/**
 * @file
 * I/O request taxonomy.
 *
 * The paper distinguishes I/O by purpose (HDFS read/write, shuffle
 * read/write, persist read/write) because each purpose has a distinct
 * request-size signature, and effective bandwidth depends on request
 * size. Disks account statistics per operation so model fitting can look
 * up the right effective bandwidth per stage.
 */

#ifndef DOPPIO_STORAGE_IO_REQUEST_H
#define DOPPIO_STORAGE_IO_REQUEST_H

#include <array>
#include <string>

namespace doppio::storage {

/** Read vs write direction. */
enum class IoKind { Read, Write };

/** Purpose of an I/O access; drives per-purpose accounting. */
enum class IoOp {
    HdfsRead,
    HdfsWrite,
    ShuffleRead,
    ShuffleWrite,
    PersistRead,
    PersistWrite,
    RawRead,  //!< microbenchmark (fio) traffic
    RawWrite, //!< microbenchmark (fio) traffic
    SpillRead,  //!< external-sort merge pass reading spill files
    SpillWrite, //!< execution-memory overflow spilled to local disk
};

/** Number of IoOp values, for dense per-op arrays. */
constexpr std::size_t kNumIoOps = 10;

/** @return the direction of @p op. */
constexpr IoKind
ioKind(IoOp op)
{
    switch (op) {
      case IoOp::HdfsRead:
      case IoOp::ShuffleRead:
      case IoOp::PersistRead:
      case IoOp::RawRead:
      case IoOp::SpillRead:
        return IoKind::Read;
      default:
        return IoKind::Write;
    }
}

/** @return true when @p op is a read. */
constexpr bool
isRead(IoOp op)
{
    return ioKind(op) == IoKind::Read;
}

/** @return a short human-readable name ("shuffle_read", ...). */
const char *ioOpName(IoOp op);

/** All IoOp values, for iteration. */
constexpr std::array<IoOp, kNumIoOps> kAllIoOps = {
    IoOp::HdfsRead,    IoOp::HdfsWrite,   IoOp::ShuffleRead,
    IoOp::ShuffleWrite, IoOp::PersistRead, IoOp::PersistWrite,
    IoOp::RawRead,     IoOp::RawWrite,    IoOp::SpillRead,
    IoOp::SpillWrite,
};

} // namespace doppio::storage

#endif // DOPPIO_STORAGE_IO_REQUEST_H
