#include "storage/disk_device.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "trace/trace_collector.h"

namespace doppio::storage {

DiskDevice::DiskDevice(sim::Simulator &simulator, DiskParams params,
                       std::string name)
    : sim_(simulator), params_(std::move(params)), name_(std::move(name)),
      readPipe_(simulator, params_.readBandwidth, name_ + "/read"),
      writePipe_(simulator, params_.writeBandwidth, name_ + "/write")
{
    params_.validate();
}

void
DiskDevice::setDegradedFactor(double factor)
{
    if (factor < 1.0)
        fatal("DiskDevice %s: degraded factor must be >= 1, got %g",
              name_.c_str(), factor);
    degrade_ = factor;
}

void
DiskDevice::setTrace(trace::TraceCollector *trace, int pid, int tid)
{
    trace_ = trace;
    tracePid_ = pid;
    traceTid_ = tid;
}

void
DiskDevice::traceQueueDelta(int delta)
{
    traceQueue_ += delta;
    trace_->counter(tracePid_, "disk", name_ + "/queue", sim_.now(),
                    static_cast<double>(traceQueue_));
}

Tick
DiskDevice::degradedLatency(Tick latency) const
{
    if (degrade_ == 1.0)
        return latency;
    return static_cast<Tick>(static_cast<double>(latency) * degrade_ +
                             0.5);
}

void
DiskDevice::submit(IoOp op, Bytes size, std::function<void()> done)
{
    if (size == 0) {
        sim_.schedule(0, std::move(done));
        return;
    }

    const bool read = isRead(op);
    const double iops = read ? params_.readIops : params_.writeIops;
    const Tick admit_interval = secondsToTicks(degrade_ / iops);
    const Tick latency = degradedLatency(
        read ? params_.readLatency : params_.writeLatency);
    const BytesPerSec bw =
        read ? params_.readBandwidth : params_.writeBandwidth;
    // A healthy device does not cap individual flows; the pipe's
    // shared capacity already enforces the bandwidth limit.
    const BytesPerSec rate_cap =
        degrade_ > 1.0 ? bw / degrade_
                       : std::numeric_limits<double>::infinity();

    // Shared admission token bucket: the arm/controller starts one
    // request per 1/IOPS interval, regardless of direction.
    const Tick grant = std::max(sim_.now(), nextAdmit_);
    nextAdmit_ = grant + admit_interval;

    const Tick submitted = sim_.now();
    if (trace_)
        traceQueueDelta(+1);

    sim::FluidPipe &pipe = read ? readPipe_ : writePipe_;
    sim_.scheduleAt(
        grant + latency, [this, &pipe, op, size, rate_cap, submitted,
                          done = std::move(done)]() mutable {
            pipe.startFlow(
                size,
                [this, op, size, submitted,
                 done = std::move(done)]() mutable {
                    stats_.record(op, size);
                    if (observer_)
                        observer_(op, size, 1, sim_.now() - submitted);
                    if (trace_) {
                        trace_->span(tracePid_, traceTid_, "disk",
                                     ioOpName(op), submitted, sim_.now(),
                                     trace::TraceArgs().add("bytes",
                                                            size));
                        traceQueueDelta(-1);
                    }
                    if (done)
                        done();
                },
                rate_cap);
        });
}

void
DiskDevice::submitBatch(IoOp op, Bytes size, std::uint64_t count,
                        std::function<void()> done)
{
    if (size == 0 || count == 0) {
        sim_.schedule(0, std::move(done));
        return;
    }
    if (count == 1) {
        submit(op, size, std::move(done));
        return;
    }

    const bool read = isRead(op);
    const double iops = read ? params_.readIops : params_.writeIops;
    const Tick admit_interval = secondsToTicks(degrade_ / iops);
    const Tick latency = degradedLatency(
        read ? params_.readLatency : params_.writeLatency);
    const BytesPerSec bw =
        (read ? params_.readBandwidth : params_.writeBandwidth) /
        degrade_;

    // Reserve all admission tokens (FIFO, work conserving).
    const Tick grant = std::max(sim_.now(), nextAdmit_);
    nextAdmit_ = grant + admit_interval * count;

    // A solo synchronous client paces itself at one request per
    // max(admission interval, latency + transfer) seconds.
    const double per_request = std::max(
        ticksToSeconds(admit_interval),
        ticksToSeconds(latency) + static_cast<double>(size) / bw);
    const BytesPerSec solo_rate = static_cast<double>(size) / per_request;

    const Tick submitted = sim_.now();
    if (trace_)
        traceQueueDelta(+1);

    sim::FluidPipe &pipe = read ? readPipe_ : writePipe_;
    const Bytes total = size * count;
    sim_.scheduleAt(
        grant + latency, [this, &pipe, op, size, count, total, solo_rate,
                          submitted, done = std::move(done)]() mutable {
            pipe.startFlow(
                total,
                [this, op, size, count, submitted,
                 done = std::move(done)]() mutable {
                    stats_.recordMany(op, size, count);
                    if (observer_)
                        observer_(op, size, count,
                                  sim_.now() - submitted);
                    if (trace_) {
                        trace_->span(tracePid_, traceTid_, "disk",
                                     ioOpName(op), submitted, sim_.now(),
                                     trace::TraceArgs()
                                         .add("bytes", size * count)
                                         .add("requests", count));
                        traceQueueDelta(-1);
                    }
                    if (done)
                        done();
                },
                solo_rate);
        });
}

} // namespace doppio::storage
