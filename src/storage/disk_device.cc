#include "storage/disk_device.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace doppio::storage {

DiskDevice::DiskDevice(sim::Simulator &simulator, DiskParams params,
                       std::string name)
    : sim_(simulator), params_(std::move(params)), name_(std::move(name)),
      readPipe_(simulator, params_.readBandwidth, name_ + "/read"),
      writePipe_(simulator, params_.writeBandwidth, name_ + "/write")
{
    params_.validate();
}

void
DiskDevice::setDegradedFactor(double factor)
{
    if (factor < 1.0)
        fatal("DiskDevice %s: degraded factor must be >= 1, got %g",
              name_.c_str(), factor);
    degrade_ = factor;
}

Tick
DiskDevice::degradedLatency(Tick latency) const
{
    if (degrade_ == 1.0)
        return latency;
    return static_cast<Tick>(static_cast<double>(latency) * degrade_ +
                             0.5);
}

void
DiskDevice::submit(IoOp op, Bytes size, std::function<void()> done)
{
    if (size == 0) {
        sim_.schedule(0, std::move(done));
        return;
    }

    const bool read = isRead(op);
    const double iops = read ? params_.readIops : params_.writeIops;
    const Tick admit_interval = secondsToTicks(degrade_ / iops);
    const Tick latency = degradedLatency(
        read ? params_.readLatency : params_.writeLatency);
    const BytesPerSec bw =
        read ? params_.readBandwidth : params_.writeBandwidth;
    // A healthy device does not cap individual flows; the pipe's
    // shared capacity already enforces the bandwidth limit.
    const BytesPerSec rate_cap =
        degrade_ > 1.0 ? bw / degrade_
                       : std::numeric_limits<double>::infinity();

    // Shared admission token bucket: the arm/controller starts one
    // request per 1/IOPS interval, regardless of direction.
    const Tick grant = std::max(sim_.now(), nextAdmit_);
    nextAdmit_ = grant + admit_interval;

    sim::FluidPipe &pipe = read ? readPipe_ : writePipe_;
    sim_.scheduleAt(
        grant + latency, [this, &pipe, op, size, rate_cap,
                          done = std::move(done)]() mutable {
            pipe.startFlow(
                size,
                [this, op, size, done = std::move(done)]() mutable {
                    stats_.record(op, size);
                    if (done)
                        done();
                },
                rate_cap);
        });
}

void
DiskDevice::submitBatch(IoOp op, Bytes size, std::uint64_t count,
                        std::function<void()> done)
{
    if (size == 0 || count == 0) {
        sim_.schedule(0, std::move(done));
        return;
    }
    if (count == 1) {
        submit(op, size, std::move(done));
        return;
    }

    const bool read = isRead(op);
    const double iops = read ? params_.readIops : params_.writeIops;
    const Tick admit_interval = secondsToTicks(degrade_ / iops);
    const Tick latency = degradedLatency(
        read ? params_.readLatency : params_.writeLatency);
    const BytesPerSec bw =
        (read ? params_.readBandwidth : params_.writeBandwidth) /
        degrade_;

    // Reserve all admission tokens (FIFO, work conserving).
    const Tick grant = std::max(sim_.now(), nextAdmit_);
    nextAdmit_ = grant + admit_interval * count;

    // A solo synchronous client paces itself at one request per
    // max(admission interval, latency + transfer) seconds.
    const double per_request = std::max(
        ticksToSeconds(admit_interval),
        ticksToSeconds(latency) + static_cast<double>(size) / bw);
    const BytesPerSec solo_rate = static_cast<double>(size) / per_request;

    sim::FluidPipe &pipe = read ? readPipe_ : writePipe_;
    const Bytes total = size * count;
    sim_.scheduleAt(
        grant + latency, [this, &pipe, op, size, count, total, solo_rate,
                          done = std::move(done)]() mutable {
            pipe.startFlow(
                total,
                [this, op, size, count, done = std::move(done)]() mutable {
                    stats_.recordMany(op, size, count);
                    if (done)
                        done();
                },
                solo_rate);
        });
}

} // namespace doppio::storage
