#include "storage/disk_device.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace doppio::storage {

DiskDevice::DiskDevice(sim::Simulator &simulator, DiskParams params,
                       std::string name)
    : sim_(simulator), params_(std::move(params)), name_(std::move(name)),
      readPipe_(simulator, params_.readBandwidth, name_ + "/read"),
      writePipe_(simulator, params_.writeBandwidth, name_ + "/write")
{
    params_.validate();
}

void
DiskDevice::submit(IoOp op, Bytes size, std::function<void()> done)
{
    if (size == 0) {
        sim_.schedule(0, std::move(done));
        return;
    }

    const bool read = isRead(op);
    const double iops = read ? params_.readIops : params_.writeIops;
    const Tick admit_interval = secondsToTicks(1.0 / iops);
    const Tick latency =
        read ? params_.readLatency : params_.writeLatency;

    // Shared admission token bucket: the arm/controller starts one
    // request per 1/IOPS interval, regardless of direction.
    const Tick grant = std::max(sim_.now(), nextAdmit_);
    nextAdmit_ = grant + admit_interval;

    sim::FluidPipe &pipe = read ? readPipe_ : writePipe_;
    sim_.scheduleAt(
        grant + latency, [this, &pipe, op, size,
                          done = std::move(done)]() mutable {
            pipe.startFlow(size, [this, op, size,
                                  done = std::move(done)]() mutable {
                stats_.record(op, size);
                if (done)
                    done();
            });
        });
}

void
DiskDevice::submitBatch(IoOp op, Bytes size, std::uint64_t count,
                        std::function<void()> done)
{
    if (size == 0 || count == 0) {
        sim_.schedule(0, std::move(done));
        return;
    }
    if (count == 1) {
        submit(op, size, std::move(done));
        return;
    }

    const bool read = isRead(op);
    const double iops = read ? params_.readIops : params_.writeIops;
    const Tick admit_interval = secondsToTicks(1.0 / iops);
    const Tick latency =
        read ? params_.readLatency : params_.writeLatency;
    const BytesPerSec bw =
        read ? params_.readBandwidth : params_.writeBandwidth;

    // Reserve all admission tokens (FIFO, work conserving).
    const Tick grant = std::max(sim_.now(), nextAdmit_);
    nextAdmit_ = grant + admit_interval * count;

    // A solo synchronous client paces itself at one request per
    // max(admission interval, latency + transfer) seconds.
    const double per_request = std::max(
        ticksToSeconds(admit_interval),
        ticksToSeconds(latency) + static_cast<double>(size) / bw);
    const BytesPerSec solo_rate = static_cast<double>(size) / per_request;

    sim::FluidPipe &pipe = read ? readPipe_ : writePipe_;
    const Bytes total = size * count;
    sim_.scheduleAt(
        grant + latency, [this, &pipe, op, size, count, total, solo_rate,
                          done = std::move(done)]() mutable {
            pipe.startFlow(
                total,
                [this, op, size, count, done = std::move(done)]() mutable {
                    stats_.recordMany(op, size, count);
                    if (done)
                        done();
                },
                solo_rate);
        });
}

} // namespace doppio::storage
