/**
 * @file
 * Simulated block device.
 *
 * Implements the three-stage mechanistic model described in
 * disk_params.h: IOPS-token admission, fixed latency, fluid-shared
 * transfer. Under concurrent small random requests the device is
 * admission-limited; under large requests it is transfer-limited —
 * reproducing the request-size-dependent effective bandwidth the Doppio
 * model is built around.
 */

#ifndef DOPPIO_STORAGE_DISK_DEVICE_H
#define DOPPIO_STORAGE_DISK_DEVICE_H

#include <functional>
#include <memory>
#include <string>

#include "common/sim_time.h"
#include "common/units.h"
#include "sim/fluid_pipe.h"
#include "sim/simulator.h"
#include "storage/disk_params.h"
#include "storage/disk_stats.h"
#include "storage/io_request.h"

namespace doppio::trace {
class TraceCollector;
}

namespace doppio::storage {

/**
 * A single simulated disk. All methods must be called from simulation
 * context (inside event callbacks or before run()).
 */
class DiskDevice
{
  public:
    /**
     * @param simulator owning event loop.
     * @param params    validated device parameters.
     * @param name      instance name, e.g. "node3/spark_local".
     */
    DiskDevice(sim::Simulator &simulator, DiskParams params,
               std::string name);

    /**
     * Submit one request; @p done fires when the last byte completes.
     * Zero-byte requests complete via an immediate event.
     */
    void submit(IoOp op, Bytes size, std::function<void()> done);

    /**
     * Submit @p count back-to-back requests of identical @p size from a
     * single synchronous client, in O(1) simulation events.
     *
     * Semantics: the client issues request i+1 when request i completes
     * (a Spark task's chunked read loop). The batch charges the
     * admission token bucket for all @p count requests (work-conserving
     * FIFO ordering with concurrent batches, so aggregate IOPS and
     * bandwidth limits hold exactly) and transfers count*size bytes as
     * one fluid flow rate-capped at the single-stream self-pacing rate
     * size / max(1/IOPS, latency + size/bandwidth). Stage makespans
     * match the per-request path; individual completion interleaving is
     * coarser. @p done fires when the last request completes.
     */
    void submitBatch(IoOp op, Bytes size, std::uint64_t count,
                     std::function<void()> done);

    /**
     * Degrade (or restore) the device: service times scale by
     * @p factor >= 1 — admission slows to IOPS/factor, latency grows
     * to latency*factor, transfers cap at bandwidth/factor. Factor 1
     * restores full speed bit-for-bit. Models the fault injector's
     * failing-controller / thermal-throttle mode; in-flight requests
     * are unaffected.
     */
    void setDegradedFactor(double factor);

    /** @return the current degradation factor (1 = healthy). */
    double degradedFactor() const { return degrade_; }

    /** @return device parameters. */
    const DiskParams &params() const { return params_; }

    /** @return accumulated statistics. */
    const DiskStats &stats() const { return stats_; }

    /** Reset statistics (measurement-window control). */
    void resetStats() { stats_.reset(); }

    /** @return ticks during which a read transfer was active. */
    Tick readBusyTime() const { return readPipe_.busyTime(); }

    /** @return ticks during which a write transfer was active. */
    Tick writeBusyTime() const { return writePipe_.busyTime(); }

    /** @return number of requests currently in flight (post-admission
     *          transfer phase). */
    std::size_t inFlight() const
    {
        return readPipe_.activeFlows() + writePipe_.activeFlows();
    }

    const std::string &name() const { return name_; }

    /**
     * Attach an optional trace collector (non-owning; may be null).
     * Every request then emits a span on track (@p pid, @p tid)
     * covering submission to last-byte completion, plus a queue-depth
     * counter. Detached (the default), the hooks are null checks and
     * the device's behavior is unchanged.
     */
    void setTrace(trace::TraceCollector *trace, int pid, int tid);

    /**
     * Observer of completed requests: (op, per-request size, request
     * count, submission-to-last-byte ticks). Batches report once with
     * count > 1. The telemetry layer installs this to feed latency
     * histograms; like the trace hook it is a null check when unset
     * and never alters device behavior.
     */
    using CompletionObserver = std::function<void(
        IoOp op, Bytes size, std::uint64_t count, Tick duration)>;

    /** Install @p observer (empty function detaches). */
    void setCompletionObserver(CompletionObserver observer)
    {
        observer_ = std::move(observer);
    }

  private:
    sim::Simulator &sim_;
    DiskParams params_;
    std::string name_;
    sim::FluidPipe readPipe_;
    sim::FluidPipe writePipe_;
    DiskStats stats_;
    /// Next time the (shared) admission token bucket grants a request.
    Tick nextAdmit_ = 0;
    /// Service-time multiplier (>= 1); 1 means healthy.
    double degrade_ = 1.0;
    /// Optional telemetry hook (non-owning) and its track ids.
    trace::TraceCollector *trace_ = nullptr;
    int tracePid_ = 0;
    int traceTid_ = 0;
    /// Requests submitted but not yet completed (tracing only).
    int traceQueue_ = 0;
    /// Optional telemetry completion hook (empty when detached).
    CompletionObserver observer_;

    Tick degradedLatency(Tick latency) const;
    void traceQueueDelta(int delta);
};

} // namespace doppio::storage

#endif // DOPPIO_STORAGE_DISK_DEVICE_H
