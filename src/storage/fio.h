/**
 * @file
 * fio-style disk microbenchmark (one-time disk profiling).
 *
 * The paper's methodology starts with "one-time disk profiling per data
 * center" using fio: sweep request sizes, log IOPS and effective
 * bandwidth, and build lookup tables the model consults (§III-C, §VI-1,
 * Fig. 5). FioProfiler plays that role against the simulated devices:
 * each measurement point runs a private discrete-event simulation with
 * queueDepth concurrent workers issuing fixed-size requests
 * back-to-back, and reports aggregate IOPS and bandwidth.
 */

#ifndef DOPPIO_STORAGE_FIO_H
#define DOPPIO_STORAGE_FIO_H

#include <vector>

#include "common/lookup_table.h"
#include "common/units.h"
#include "storage/disk_params.h"
#include "storage/io_request.h"

namespace doppio::storage {

/** One measurement point of a request-size sweep. */
struct FioResult
{
    Bytes requestSize = 0;
    double iops = 0.0;
    BytesPerSec bandwidth = 0.0;
};

/** Request-size sweep driver over a simulated device. */
class FioProfiler
{
  public:
    /** Measurement configuration. */
    struct Config
    {
        int queueDepth = 32;        //!< concurrent workers
        int requestsPerWorker = 64; //!< sequential requests per worker
    };

    /**
     * @param params device to profile (a private DiskDevice instance is
     *               created per measurement point).
     */
    explicit FioProfiler(DiskParams params, Config config);

    /** Profile with the default configuration. */
    explicit FioProfiler(DiskParams params);

    /** Measure aggregate IOPS/bandwidth at one request size. */
    FioResult measure(IoKind kind, Bytes requestSize) const;

    /** Measure a full sweep. */
    std::vector<FioResult> sweep(IoKind kind,
                                 const std::vector<Bytes> &sizes) const;

    /**
     * Build the effective-bandwidth lookup table the Doppio model
     * consumes: x = request size (bytes), y = bandwidth (bytes/s),
     * log-interpolated.
     */
    LookupTable bandwidthTable(IoKind kind,
                               const std::vector<Bytes> &sizes) const;

    /** Convenience: bandwidthTable over defaultSweepSizes(). */
    LookupTable bandwidthTable(IoKind kind) const;

    /** 4 KB ... 365 MB, the span of request sizes Spark produces. */
    static std::vector<Bytes> defaultSweepSizes();

    const DiskParams &params() const { return params_; }

  private:
    DiskParams params_;
    Config config_;
};

} // namespace doppio::storage

#endif // DOPPIO_STORAGE_FIO_H
