#include "storage/fio.h"

#include <memory>
#include <utility>

#include "common/logging.h"
#include "sim/simulator.h"
#include "storage/disk_device.h"

namespace doppio::storage {

FioProfiler::FioProfiler(DiskParams params, Config config)
    : params_(std::move(params)), config_(config)
{
    params_.validate();
    if (config_.queueDepth <= 0 || config_.requestsPerWorker <= 0)
        fatal("FioProfiler: queueDepth and requestsPerWorker must be "
              "positive");
}

FioProfiler::FioProfiler(DiskParams params)
    : FioProfiler(std::move(params), Config{})
{}

FioResult
FioProfiler::measure(IoKind kind, Bytes requestSize) const
{
    if (requestSize == 0)
        fatal("FioProfiler: request size must be positive");

    sim::Simulator sim;
    DiskDevice dev(sim, params_, "fio");
    const IoOp op =
        kind == IoKind::Read ? IoOp::RawRead : IoOp::RawWrite;

    // Each worker issues its next request when the previous one
    // completes, emulating fio's per-job synchronous loop at the
    // configured aggregate queue depth.
    struct Worker
    {
        int remaining;
        std::function<void()> issue;
    };
    std::vector<std::unique_ptr<Worker>> workers;
    workers.reserve(static_cast<std::size_t>(config_.queueDepth));
    for (int w = 0; w < config_.queueDepth; ++w) {
        auto worker = std::make_unique<Worker>();
        worker->remaining = config_.requestsPerWorker;
        Worker *raw = worker.get();
        worker->issue = [raw, &dev, op, requestSize]() {
            if (raw->remaining == 0)
                return;
            --raw->remaining;
            dev.submit(op, requestSize, [raw]() { raw->issue(); });
        };
        workers.push_back(std::move(worker));
    }
    for (auto &worker : workers)
        worker->issue();

    const Tick end = sim.run();
    const double elapsed = ticksToSeconds(end);
    const OpStats &stats = dev.stats().forOp(op);

    FioResult result;
    result.requestSize = requestSize;
    if (elapsed > 0.0) {
        result.iops =
            static_cast<double>(stats.requests) / elapsed;
        result.bandwidth =
            static_cast<double>(stats.bytes) / elapsed;
    }
    return result;
}

std::vector<FioResult>
FioProfiler::sweep(IoKind kind, const std::vector<Bytes> &sizes) const
{
    std::vector<FioResult> results;
    results.reserve(sizes.size());
    for (Bytes size : sizes)
        results.push_back(measure(kind, size));
    return results;
}

LookupTable
FioProfiler::bandwidthTable(IoKind kind,
                            const std::vector<Bytes> &sizes) const
{
    std::vector<std::pair<double, double>> points;
    points.reserve(sizes.size());
    for (const FioResult &r : sweep(kind, sizes))
        points.emplace_back(static_cast<double>(r.requestSize),
                            r.bandwidth);
    return LookupTable(std::move(points), LookupTable::Scale::Log);
}

LookupTable
FioProfiler::bandwidthTable(IoKind kind) const
{
    return bandwidthTable(kind, defaultSweepSizes());
}

std::vector<Bytes>
FioProfiler::defaultSweepSizes()
{
    return {
        kib(4),   kib(8),   kib(16),  kib(30),  kib(64),  kib(128),
        kib(256), kib(512), mib(1),   mib(4),   mib(16),  mib(27),
        mib(64),  mib(128), mib(365),
    };
}

} // namespace doppio::storage
