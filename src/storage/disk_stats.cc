#include "storage/disk_stats.h"

namespace doppio::storage {

void
DiskStats::record(IoOp op, Bytes size)
{
    OpStats &s = ops_[static_cast<std::size_t>(op)];
    ++s.requests;
    s.bytes += size;
    s.requestSize.add(static_cast<double>(size));
}

void
DiskStats::recordMany(IoOp op, Bytes size, std::uint64_t count)
{
    OpStats &s = ops_[static_cast<std::size_t>(op)];
    s.requests += count;
    s.bytes += size * count;
    s.requestSize.addMany(static_cast<double>(size), count);
}

Bytes
DiskStats::totalBytes(IoKind kind) const
{
    Bytes total = 0;
    for (IoOp op : kAllIoOps) {
        if (ioKind(op) == kind)
            total += forOp(op).bytes;
    }
    return total;
}

std::uint64_t
DiskStats::totalRequests(IoKind kind) const
{
    std::uint64_t total = 0;
    for (IoOp op : kAllIoOps) {
        if (ioKind(op) == kind)
            total += forOp(op).requests;
    }
    return total;
}

void
DiskStats::reset()
{
    for (auto &op : ops_)
        op = OpStats();
}

} // namespace doppio::storage
