/**
 * @file
 * iostat-style per-device, per-operation accounting.
 *
 * The paper's methodology uses iostat to log average request sizes per
 * stage and look up effective bandwidths (§VI-1). DiskStats provides the
 * same observables from the simulated device: per-IoOp request counts,
 * bytes, and request-size averages, plus device busy time.
 */

#ifndef DOPPIO_STORAGE_DISK_STATS_H
#define DOPPIO_STORAGE_DISK_STATS_H

#include <array>
#include <cstdint>

#include "common/sim_time.h"
#include "common/stats.h"
#include "common/units.h"
#include "storage/io_request.h"

namespace doppio::storage {

/** Accumulated statistics for one IoOp class. */
struct OpStats
{
    std::uint64_t requests = 0;
    Bytes bytes = 0;
    SummaryStats requestSize;

    /** @return average request size (bytes), 0 when no requests. */
    double
    avgRequestSize() const
    {
        return requests ? requestSize.mean() : 0.0;
    }
};

/** Per-device statistics, indexed by IoOp. */
class DiskStats
{
  public:
    /** Record a completed request of @p size for @p op. */
    void record(IoOp op, Bytes size);

    /** Record @p count completed requests of identical @p size. */
    void recordMany(IoOp op, Bytes size, std::uint64_t count);

    /** @return stats for one operation class. */
    const OpStats &forOp(IoOp op) const
    {
        return ops_[static_cast<std::size_t>(op)];
    }

    /** @return total bytes moved in @p kind direction. */
    Bytes totalBytes(IoKind kind) const;

    /** @return total requests in @p kind direction. */
    std::uint64_t totalRequests(IoKind kind) const;

    /** Reset all counters (used between fio measurement windows). */
    void reset();

  private:
    std::array<OpStats, kNumIoOps> ops_;
};

} // namespace doppio::storage

#endif // DOPPIO_STORAGE_DISK_STATS_H
