#include "trace/trace_collector.h"

#include <cinttypes>
#include <cstdio>

#include "common/logging.h"

namespace doppio::trace {

namespace {

/** Minimal JSON string escaping (names are ASCII identifiers here). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/**
 * Ticks (ns) as microseconds with 3 decimals, via integer arithmetic
 * so the string is identical on every platform and run.
 */
std::string
ticksAsUs(Tick t)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", t / 1000,
                  static_cast<unsigned>(t % 1000));
    return buf;
}

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

// ----------------------------------------------------------------------
// TraceArgs

void
TraceArgs::key(const char *name)
{
    if (!body_.empty())
        body_ += ',';
    body_ += '"';
    body_ += name;
    body_ += "\":";
}

TraceArgs &
TraceArgs::add(const char *k, std::uint64_t value)
{
    key(k);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    body_ += buf;
    return *this;
}

TraceArgs &
TraceArgs::add(const char *k, std::int64_t value)
{
    key(k);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    body_ += buf;
    return *this;
}

TraceArgs &
TraceArgs::add(const char *k, int value)
{
    return add(k, static_cast<std::int64_t>(value));
}

TraceArgs &
TraceArgs::add(const char *k, double value)
{
    key(k);
    body_ += num(value);
    return *this;
}

TraceArgs &
TraceArgs::add(const char *k, const std::string &value)
{
    key(k);
    body_ += '"';
    body_ += escape(value);
    body_ += '"';
    return *this;
}

TraceArgs &
TraceArgs::add(const char *k, const char *value)
{
    return add(k, std::string(value));
}

// ----------------------------------------------------------------------
// TraceCollector

void
TraceCollector::emit(TraceEvent &&event)
{
    if (sink_)
        sink_->onTraceEvent(event);
    if (!recordOnly_)
        events_.push_back(std::move(event));
}

void
TraceCollector::span(int pid, int tid, const char *cat,
                     std::string name, Tick start, Tick end,
                     const TraceArgs &args)
{
    if (end < start)
        panic("TraceCollector: span '%s' ends (%llu) before it starts "
              "(%llu)",
              name.c_str(), static_cast<unsigned long long>(end),
              static_cast<unsigned long long>(start));
    TraceEvent event;
    event.type = TraceEvent::Type::Span;
    event.pid = pid;
    event.tid = tid;
    event.cat = cat;
    event.name = std::move(name);
    event.start = start;
    event.end = end;
    event.args = args.str();
    emit(std::move(event));
}

void
TraceCollector::instant(int pid, int tid, const char *cat,
                        std::string name, Tick tick,
                        const TraceArgs &args)
{
    TraceEvent event;
    event.type = TraceEvent::Type::Instant;
    event.pid = pid;
    event.tid = tid;
    event.cat = cat;
    event.name = std::move(name);
    event.start = tick;
    event.end = tick;
    event.args = args.str();
    emit(std::move(event));
}

void
TraceCollector::counter(int pid, const char *cat, std::string name,
                        Tick tick, double value)
{
    TraceEvent event;
    event.type = TraceEvent::Type::Counter;
    event.pid = pid;
    event.tid = 0;
    event.cat = cat;
    event.name = std::move(name);
    event.start = tick;
    event.end = tick;
    event.value = value;
    emit(std::move(event));
}

void
TraceCollector::setProcessName(int pid, std::string name)
{
    processNames_[pid] = std::move(name);
}

void
TraceCollector::setThreadName(int pid, int tid, std::string name)
{
    threadNames_[{pid, tid}] = std::move(name);
}

std::map<std::string, std::uint64_t>
TraceCollector::countsByCategory() const
{
    std::map<std::string, std::uint64_t> counts;
    for (const TraceEvent &event : events_)
        ++counts[event.cat];
    return counts;
}

std::uint64_t
TraceCollector::countByType(TraceEvent::Type type) const
{
    std::uint64_t count = 0;
    for (const TraceEvent &event : events_) {
        if (event.type == type)
            ++count;
    }
    return count;
}

void
TraceCollector::writeChromeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&os, &first]() {
        if (!first)
            os << ',';
        first = false;
        os << '\n';
    };

    // Track-naming metadata first (sorted maps: deterministic order).
    for (const auto &[pid, name] : processNames_) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << pid
           << ",\"name\":\"process_name\",\"args\":{\"name\":\""
           << escape(name) << "\"}}";
    }
    for (const auto &[track, name] : threadNames_) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << track.first
           << ",\"tid\":" << track.second
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << escape(name) << "\"}}";
    }

    for (const TraceEvent &event : events_) {
        sep();
        switch (event.type) {
          case TraceEvent::Type::Span:
            os << "{\"ph\":\"X\",\"pid\":" << event.pid
               << ",\"tid\":" << event.tid << ",\"cat\":\"" << event.cat
               << "\",\"name\":\"" << escape(event.name)
               << "\",\"ts\":" << ticksAsUs(event.start)
               << ",\"dur\":" << ticksAsUs(event.end - event.start);
            break;
          case TraceEvent::Type::Instant:
            os << "{\"ph\":\"i\",\"pid\":" << event.pid
               << ",\"tid\":" << event.tid << ",\"cat\":\"" << event.cat
               << "\",\"name\":\"" << escape(event.name)
               << "\",\"ts\":" << ticksAsUs(event.start)
               << ",\"s\":\"t\"";
            break;
          case TraceEvent::Type::Counter:
            os << "{\"ph\":\"C\",\"pid\":" << event.pid
               << ",\"tid\":0,\"cat\":\"" << event.cat
               << "\",\"name\":\"" << escape(event.name)
               << "\",\"ts\":" << ticksAsUs(event.start)
               << ",\"args\":{\"value\":" << num(event.value) << "}}";
            continue;
        }
        if (event.args.empty())
            os << '}';
        else
            os << ",\"args\":{" << event.args << "}}";
    }
    os << "\n]}\n";
}

} // namespace doppio::trace
