/**
 * @file
 * Unified tracing/telemetry collector.
 *
 * Every subsystem of the simulator (task engine, disk devices, page
 * caches, network pipes, HDFS, memory manager, fault injector) carries
 * an optional non-owning TraceCollector hook. When no collector is
 * attached the hooks are single null-pointer checks and the simulation
 * output is bit-for-bit identical to a build without the trace
 * subsystem; when one is attached, the run produces a timeline of
 * spans, instant events and monotonic counters, all stamped in
 * simulator Ticks, exportable as Chrome trace-event JSON that loads
 * directly in Perfetto / chrome://tracing.
 *
 * Track model: each simulated node is a trace "process" (pid), and the
 * node's executor core slots, devices, page cache, NIC ingress and
 * memory pool are "threads" (tids) within it. The driver (stage
 * windows, scheduler/fault events) is its own process. Counters are
 * keyed (pid, name), matching the Chrome counter semantics.
 */

#ifndef DOPPIO_TRACE_TRACE_COLLECTOR_H
#define DOPPIO_TRACE_TRACE_COLLECTOR_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"

namespace doppio::trace {

// ----------------------------------------------------------------------
// Track-id scheme, shared by every emitting subsystem.

/** Trace process id of the driver (stages, scheduler, faults). */
constexpr int kDriverPid = 1;

/** @return the trace process id of slave node @p node. */
constexpr int
nodePid(int node)
{
    return 10 + node;
}

// Driver tids.
constexpr int kTidStages = 1; //!< stage windows
constexpr int kTidFaults = 2; //!< injected fault events
constexpr int kTidHdfs = 3;   //!< HDFS failover / re-replication
/** Base of the per-job driver lanes (multi-tenant runs): job j's
 *  stage windows and batch spans land on tid kTidJobBase + j, so
 *  Perfetto shows one lane per tenant instead of one interleaved
 *  "stages" lane. Single-job runs keep using kTidStages. */
constexpr int kTidJobBase = 10;

/** @return the driver tid of job @p job (multi-tenant lanes). */
constexpr int
jobTid(int job)
{
    return kTidJobBase + job;
}

// Per-node tids.
constexpr int kTidCoreBase = 1;        //!< +core slot (task spans)
constexpr int kTidHdfsDiskBase = 100;  //!< +device index
constexpr int kTidLocalDiskBase = 200; //!< +device index
constexpr int kTidPageCache = 300;
constexpr int kTidNetIn = 400;
constexpr int kTidMemory = 500;

/** @return the tid of core slot @p slot on a node. */
constexpr int
coreTid(int slot)
{
    return kTidCoreBase + slot;
}

// ----------------------------------------------------------------------

/**
 * Incrementally-built "k":v argument list for one event. Values are
 * serialized immediately with deterministic formatting, so storing an
 * args string costs one allocation and no later interpretation.
 */
class TraceArgs
{
  public:
    TraceArgs &add(const char *key, std::uint64_t value);
    TraceArgs &add(const char *key, std::int64_t value);
    TraceArgs &add(const char *key, int value);
    TraceArgs &add(const char *key, double value);
    TraceArgs &add(const char *key, const std::string &value);
    TraceArgs &add(const char *key, const char *value);

    const std::string &str() const { return body_; }
    bool empty() const { return body_.empty(); }

  private:
    void key(const char *name);
    std::string body_;
};

/** One recorded event. */
struct TraceEvent
{
    enum class Type { Span, Instant, Counter };

    Type type = Type::Instant;
    int pid = 0;
    int tid = 0;
    /** Static category string (never owned): "task", "phase", "disk",
     *  "cache", "net", "memory", "fault", "recovery", "stage", ... */
    const char *cat = "";
    std::string name;
    Tick start = 0; //!< ts; spans: begin of the span
    Tick end = 0;   //!< spans: end of the span (dur = end - start)
    double value = 0.0;  //!< counters only
    std::string args;    //!< pre-serialized "k":v,... fragment
};

/**
 * Receives every event a TraceCollector is handed, in emission order.
 * Lets bounded observers (the telemetry flight recorder) tap the event
 * stream without the trace library depending on them.
 */
class TraceEventSink
{
  public:
    virtual ~TraceEventSink() = default;
    virtual void onTraceEvent(const TraceEvent &event) = 0;
};

/**
 * Accumulates trace events for one run. Events are appended in
 * simulation order (the moment each one is *emitted* — a span is
 * emitted at its end tick), which is deterministic, so two identical
 * runs produce byte-identical exports.
 */
class TraceCollector
{
  public:
    /** Record a complete span [start, end] on (pid, tid). */
    void span(int pid, int tid, const char *cat, std::string name,
              Tick start, Tick end, const TraceArgs &args = {});

    /** Record an instant event at @p tick on (pid, tid). */
    void instant(int pid, int tid, const char *cat, std::string name,
                 Tick tick, const TraceArgs &args = {});

    /**
     * Record a counter sample: series (@p pid, @p name) has @p value
     * from @p tick on. Samples of one series must be emitted with
     * non-decreasing ticks (simulation order guarantees this).
     */
    void counter(int pid, const char *cat, std::string name, Tick tick,
                 double value);

    /**
     * Forward every subsequent event to @p sink as well (non-owning;
     * nullptr detaches). The sink sees events in emission order,
     * before they are stored.
     */
    void setSink(TraceEventSink *sink) { sink_ = sink; }

    /**
     * When true, events are forwarded to the sink but NOT stored in
     * the collector's event vector — bounded memory for long flights
     * where only the sink (a flight-recorder ring) matters. Track
     * names are still kept.
     */
    void setRecordOnly(bool recordOnly) { recordOnly_ = recordOnly; }

    /** Name the process track @p pid (idempotent; last call wins). */
    void setProcessName(int pid, std::string name);

    /** Name thread track (@p pid, @p tid). */
    void setThreadName(int pid, int tid, std::string name);

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }

    /** @return number of events per category, name-sorted. */
    std::map<std::string, std::uint64_t> countsByCategory() const;

    /** @return number of events of @p type. */
    std::uint64_t countByType(TraceEvent::Type type) const;

    /**
     * Write the whole trace as Chrome trace-event JSON (the format
     * Perfetto and chrome://tracing open natively). Timestamps are
     * microseconds with nanosecond (3-decimal) precision, formatted
     * with integer arithmetic so output is byte-identical across runs
     * and platforms.
     */
    void writeChromeJson(std::ostream &os) const;

  private:
    void emit(TraceEvent &&event);

    std::vector<TraceEvent> events_;
    std::map<int, std::string> processNames_;
    std::map<std::pair<int, int>, std::string> threadNames_;
    TraceEventSink *sink_ = nullptr;
    bool recordOnly_ = false;
};

} // namespace doppio::trace

#endif // DOPPIO_TRACE_TRACE_COLLECTOR_H
