/**
 * @file
 * Per-stage phase attribution, computed from the trace itself.
 *
 * Reproduces the paper's Fig. 6 decomposition: for each stage window
 * (a "stage" span on the driver track), the executor core tracks are
 * partitioned into compute, device-read, shuffle, device-write, spill,
 * recovery (attempts that crashed, were OOM-killed, lost a speculation
 * race or died with their node), scheduling overhead (dispatch and
 * memory-gate time inside successful tasks), and idle — each averaged
 * over the fleet's core tracks so the categories plus idle reconcile
 * with the stage's wall-clock by construction. The reconciliation is
 * asserted (panic) to within 1%, so a broken emitter cannot silently
 * produce a misleading breakdown.
 */

#ifndef DOPPIO_TRACE_PHASE_REPORT_H
#define DOPPIO_TRACE_PHASE_REPORT_H

#include <ostream>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "trace/trace_collector.h"

namespace doppio::trace {

/** One stage window's attributed seconds (per-core averages). */
struct PhaseBreakdown
{
    std::string stage;
    Tick start = 0;
    Tick end = 0;
    /** Attributed seconds, averaged over the run's core tracks, so
     *  the categories plus idle sum to wall(). */
    double compute = 0.0;  //!< pure-CPU phases
    double read = 0.0;     //!< HDFS/persist/raw device reads
    double shuffle = 0.0;  //!< shuffle read + write phases
    double write = 0.0;    //!< HDFS/persist/raw device writes
    double spill = 0.0;    //!< external-sort spill round trips
    double recovery = 0.0; //!< wasted attempts (crash/OOM/kill/race)
    double overhead = 0.0; //!< dispatch + memory gating in ok tasks
    double idle = 0.0;     //!< no attempt occupied the core

    /** @return the stage window's wall-clock seconds. */
    double
    wall() const
    {
        return ticksToSeconds(end - start);
    }

    /** @return the sum of every attributed category except idle. */
    double busy() const;
};

/** Phase attribution for every stage window of one traced run. */
struct PhaseReport
{
    std::vector<PhaseBreakdown> stages;
    /** Core tracks the per-core averages divide by (nodes x P). */
    int coreTracks = 0;

    /**
     * Build the report from @p collector's events. @p coreTracks is
     * the fleet's executor core count (nodes x effective cores); dead
     * nodes' cores surface as idle time. panic()s when the per-stage
     * attribution does not reconcile with the stage wall-clock to
     * within 1% — the reconciliation assertion of the report path.
     */
    static PhaseReport build(const TraceCollector &collector,
                             int coreTracks);

    /** Print as a table ("Per-stage phase attribution"). */
    void write(std::ostream &os) const;
};

} // namespace doppio::trace

#endif // DOPPIO_TRACE_PHASE_REPORT_H
