#include "trace/phase_report.h"

#include <cstring>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/table_printer.h"

namespace doppio::trace {

namespace {

/** Category slot a phase span's name maps to. */
enum class Category { Compute, Read, Shuffle, Write, Spill, Other };

Category
categoryOf(const std::string &phase)
{
    if (phase == "compute")
        return Category::Compute;
    if (phase == "hdfs_read" || phase == "persist_read" ||
        phase == "raw_read")
        return Category::Read;
    if (phase == "shuffle_read" || phase == "shuffle_write")
        return Category::Shuffle;
    if (phase == "hdfs_write" || phase == "persist_write" ||
        phase == "raw_write")
        return Category::Write;
    if (phase == "spill" || phase == "spill_read" ||
        phase == "spill_write")
        return Category::Spill;
    return Category::Other;
}

/** Seconds of overlap between [s, e) and [ws, we). */
double
overlapSeconds(Tick s, Tick e, Tick ws, Tick we)
{
    const Tick lo = std::max(s, ws);
    const Tick hi = std::min(e, we);
    return hi > lo ? ticksToSeconds(hi - lo) : 0.0;
}

/** One attempt's span on a core track, with its nested phase spans. */
struct TaskInterval
{
    Tick start = 0;
    Tick end = 0;
    bool ok = false;
    /// (category, start, end) of each phase run inside this attempt.
    std::vector<std::pair<Category, std::pair<Tick, Tick>>> phases;
};

} // namespace

double
PhaseBreakdown::busy() const
{
    return compute + read + shuffle + write + spill + recovery +
           overhead;
}

PhaseReport
PhaseReport::build(const TraceCollector &collector, int coreTracks)
{
    if (coreTracks <= 0)
        fatal("PhaseReport: coreTracks must be positive, got %d",
              coreTracks);
    PhaseReport report;
    report.coreTracks = coreTracks;

    // Partition the event stream: stage windows on the driver track,
    // attempt/phase spans per core track. Per track, spans are serial
    // (a core slot runs one attempt at a time) and phases are emitted
    // before the attempt span that encloses them, so a simple pending
    // list matches phases to their attempt.
    std::map<std::pair<int, int>, std::vector<TaskInterval>> tracks;
    std::map<std::pair<int, int>,
             std::vector<std::pair<Category, std::pair<Tick, Tick>>>>
        pending;
    for (const TraceEvent &event : collector.events()) {
        if (event.type != TraceEvent::Type::Span)
            continue;
        if (event.pid == kDriverPid) {
            if (std::strcmp(event.cat, "stage") == 0) {
                PhaseBreakdown stage;
                stage.stage = event.name;
                stage.start = event.start;
                stage.end = event.end;
                report.stages.push_back(std::move(stage));
            }
            continue;
        }
        const std::pair<int, int> track{event.pid, event.tid};
        if (std::strcmp(event.cat, "phase") == 0) {
            pending[track].push_back(
                {categoryOf(event.name), {event.start, event.end}});
        } else if (std::strcmp(event.cat, "task") == 0 ||
                   std::strcmp(event.cat, "task-lost") == 0) {
            TaskInterval interval;
            interval.start = event.start;
            interval.end = event.end;
            interval.ok = std::strcmp(event.cat, "task") == 0;
            interval.phases = std::move(pending[track]);
            pending[track].clear();
            tracks[track].push_back(std::move(interval));
        }
    }

    // Clip every attempt to every stage window it overlaps. Wasted
    // attempts count whole as recovery (their phase time was thrown
    // away with them); successful attempts split into their phases
    // plus a scheduling/gating overhead remainder.
    for (PhaseBreakdown &stage : report.stages) {
        double total[6] = {};
        double overhead = 0.0;
        double recovery = 0.0;
        for (const auto &[track, intervals] : tracks) {
            (void)track;
            for (const TaskInterval &interval : intervals) {
                const double task_s =
                    overlapSeconds(interval.start, interval.end,
                                   stage.start, stage.end);
                if (task_s <= 0.0)
                    continue;
                if (!interval.ok) {
                    recovery += task_s;
                    continue;
                }
                double phase_s = 0.0;
                for (const auto &[category, span] : interval.phases) {
                    const double s =
                        overlapSeconds(span.first, span.second,
                                       stage.start, stage.end);
                    total[static_cast<int>(category)] += s;
                    phase_s += s;
                }
                overhead += std::max(0.0, task_s - phase_s);
            }
        }
        const double cores = static_cast<double>(coreTracks);
        stage.compute = total[static_cast<int>(Category::Compute)] /
                        cores;
        stage.read = total[static_cast<int>(Category::Read)] / cores;
        stage.shuffle = total[static_cast<int>(Category::Shuffle)] /
                        cores;
        stage.write = total[static_cast<int>(Category::Write)] / cores;
        stage.spill = (total[static_cast<int>(Category::Spill)] +
                       total[static_cast<int>(Category::Other)]) /
                      cores;
        stage.recovery = recovery / cores;
        stage.overhead = overhead / cores;
        stage.idle = stage.wall() - stage.busy();

        // Reconciliation assertion: the attributed categories plus
        // idle must account for the stage window to within 1% — a
        // negative idle means core tracks were over-covered
        // (overlapping spans), a large positive residual means spans
        // went missing. Both are emitter bugs, not report noise.
        const double wall = stage.wall();
        const double tolerance = 0.01 * wall + 1e-9;
        if (stage.idle < -tolerance)
            panic("PhaseReport: stage %s attribution exceeds its "
                  "wall-clock by %.6f s (wall %.6f s): overlapping "
                  "spans on a core track",
                  stage.stage.c_str(), -stage.idle, wall);
        const double accounted = stage.busy() + stage.idle;
        if (accounted < wall - tolerance ||
            accounted > wall + tolerance)
            panic("PhaseReport: stage %s attribution (%.6f s) does "
                  "not reconcile with its wall-clock (%.6f s)",
                  stage.stage.c_str(), accounted, wall);
    }
    return report;
}

void
PhaseReport::write(std::ostream &os) const
{
    TablePrinter table("Per-stage phase attribution (s, per-core "
                       "average over " +
                       std::to_string(coreTracks) + " cores)");
    table.setHeader({"stage", "wall", "compute", "read", "shuffle",
                     "write", "spill", "recovery", "overhead", "idle"});
    for (const PhaseBreakdown &stage : stages) {
        table.addRow({stage.stage, TablePrinter::num(stage.wall(), 2),
                      TablePrinter::num(stage.compute, 2),
                      TablePrinter::num(stage.read, 2),
                      TablePrinter::num(stage.shuffle, 2),
                      TablePrinter::num(stage.write, 2),
                      TablePrinter::num(stage.spill, 2),
                      TablePrinter::num(stage.recovery, 2),
                      TablePrinter::num(stage.overhead, 2),
                      TablePrinter::num(stage.idle, 2)});
    }
    table.print(os);
}

} // namespace doppio::trace
