#include "sched/job_scheduler.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "faults/fault_injector.h"
#include "spark/recovery.h"
#include "trace/trace_collector.h"

namespace doppio::sched {

// ----------------------------------------------------------------------
// JobContext

JobContext::JobContext(JobScheduler &scheduler, int id,
                       std::string tenantName, int poolIndex)
    : scheduler_(scheduler), id_(id), name_(std::move(tenantName)),
      poolIndex_(poolIndex),
      dag_(scheduler.conf(), scheduler.hdfs(), scheduler.blockManager())
{
}

spark::RddRef
JobContext::hadoopFile(const std::string &fileName)
{
    dfs::Hdfs &hdfs = scheduler_.hdfs();
    return spark::Rdd::source(fileName, hdfs,
                              hdfs.fileIdByName(fileName));
}

void
JobContext::submitJob(JobRequest request)
{
    if (!submitted_) {
        submitted_ = true;
        submitTick_ = scheduler_.cluster_.simulator().now();
    }
    queue_.push_back(std::move(request));
    if (active_ == nullptr)
        startNextJob();
}

void
JobContext::startNextJob()
{
    if (active_ != nullptr || queue_.empty())
        return;
    auto job = std::make_unique<ActiveJob>();
    job->request = std::move(queue_.front());
    queue_.pop_front();
    // Compile at start, not at submission: materialization decisions
    // must see every block the tenant's previous jobs cached.
    job->spec = dag_.compile(job->request.name, job->request.target,
                             job->request.action);
    job->metrics.name = job->spec.name;
    inform("[%s] job %s: %zu stage(s)", name_.c_str(),
           job->spec.name.c_str(), job->spec.stages.size());
    active_ = std::move(job);
    runNextStage();
}

void
JobContext::runNextStage()
{
    if (active_->stageIdx >= active_->spec.stages.size()) {
        finishJob();
        return;
    }
    const spark::StageSpec *stage =
        &active_->spec.stages[active_->stageIdx];
    runStageRecoverable(stage, 0, [this](spark::StageMetrics metrics) {
        inform("  [%s] stage %-24s M=%-6d %s", name_.c_str(),
               metrics.name.c_str(), metrics.numTasks,
               formatDuration(metrics.endTick - metrics.startTick)
                   .c_str());
        active_->metrics.stages.push_back(std::move(metrics));
        ++active_->stageIdx;
        runNextStage();
    });
}

void
JobContext::finishJob()
{
    JobRequest request = std::move(active_->request);
    metrics_.jobs.push_back(std::move(active_->metrics));
    retired_.push_back(std::move(active_));
    doneTick_ = scheduler_.cluster_.simulator().now();
    for (const spark::RddRef &rdd : request.unpersistAfter)
        scheduler_.blockManager().unpersist(rdd.get());
    // onDone may submit (and reentrantly start) follow-up jobs — the
    // streaming driver queues its next batch, checkpoint or recovery
    // job from here. Only pull from the queue if that didn't already
    // make a job active, or the assignment below would clobber it.
    if (request.onDone)
        request.onDone();
    startNextJob();
}

void
JobContext::runStageRecoverable(const spark::StageSpec *stage, int depth,
                                StageCont cont)
{
    // Remember shuffle producers so a downstream fetch failure can
    // recompute the lost map outputs from lineage (mirrors
    // SparkContext::runStageWithRecovery, as a continuation chain).
    if (scheduler_.injector() != nullptr && stage->writesShuffle())
        shuffleProducers_.emplace(stage->name, *stage);

    beginStage(stage, [this, stage, depth, cont = std::move(cont)](
                          spark::StageMetrics merged) mutable {
        if (merged.fetchFailedSource < 0) {
            cont(std::move(merged));
            return;
        }
        if (depth > 8)
            fatal("JobContext: fetch-failure recovery recursion too "
                  "deep at stage %s",
                  stage->name.c_str());
        auto state = std::make_shared<RecoveryState>();
        /// Completed tasks of THIS stage across attempts (recovery map
        /// stages folded into `merged` must not count here).
        state->completed = merged.taskDuration.count();
        state->merged = std::move(merged);
        state->attempts = 1;
        recoverStep(stage, depth, std::move(state), std::move(cont));
    });
}

void
JobContext::recoverStep(const spark::StageSpec *stage, int depth,
                        std::shared_ptr<RecoveryState> state,
                        StageCont cont)
{
    if (state->merged.fetchFailedSource < 0) {
        cont(std::move(state->merged));
        return;
    }
    if (state->attempts >= scheduler_.conf().stageMaxAttempts)
        fatal("JobContext: stage %s failed %d attempts "
              "(stageMaxAttempts), aborting the application",
              stage->name.c_str(), state->attempts);
    ++state->attempts;
    inform("  [%s] stage %-24s fetch failure from node %d, attempt %d",
           name_.c_str(), stage->name.c_str(),
           state->merged.fetchFailedSource, state->attempts);

    auto producer = shuffleProducers_.find(stage->shuffleSource);
    if (producer == shuffleProducers_.end())
        fatal("JobContext: stage %s hit a fetch failure but its "
              "shuffle producer '%s' is unknown",
              stage->name.c_str(), stage->shuffleSource.c_str());
    // Regenerate the lost map outputs (they land on alive nodes),
    // then rerun the partitions this stage has not finished yet.
    const spark::StageSpec *recovery = ownSpec(spark::recoverySpec(
        producer->second, scheduler_.clusterRef().numSlaves()));
    runStageRecoverable(
        recovery, depth + 1,
        [this, stage, depth, state,
         cont = std::move(cont)](spark::StageMetrics rec) mutable {
            state->merged.faults.recoverySeconds += rec.seconds();
            state->merged.foldIn(rec);
            state->merged.fetchFailedSource = -1; // recovery completed

            const spark::StageSpec *rerun = ownSpec(
                spark::remainderSpec(*stage, state->completed));
            beginStage(rerun, [this, stage, depth, state,
                               cont = std::move(cont)](
                                  spark::StageMetrics rr) mutable {
                state->completed += rr.taskDuration.count();
                state->merged.faults.recoverySeconds += rr.seconds();
                ++state->merged.faults.stageReattempts;
                state->merged.foldIn(rr);
                recoverStep(stage, depth, std::move(state),
                            std::move(cont));
            });
        });
}

void
JobContext::beginStage(const spark::StageSpec *stage, StageCont cont)
{
    activeRun_ = scheduler_.engine().submitStage(
        *stage, id_, trace::jobTid(id_),
        [this, cont = std::move(cont)](
            const spark::StageMetrics &metrics) mutable {
            activeRun_ = nullptr;
            cont(metrics);
        });
    scheduler_.offerCores();
}

const spark::StageSpec *
JobContext::ownSpec(spark::StageSpec spec)
{
    ownedSpecs_.push_back(std::move(spec));
    return &ownedSpecs_.back();
}

// ----------------------------------------------------------------------
// TenancySummary

double
TenancySummary::totalCoreSeconds() const
{
    double total = 0.0;
    for (const TenantSummary &tenant : tenants)
        total += tenant.coreSeconds;
    return total;
}

// ----------------------------------------------------------------------
// JobScheduler

JobScheduler::JobScheduler(cluster::Cluster &clusterRef, dfs::Hdfs &hdfs,
                           spark::SparkConf conf)
    : cluster_(clusterRef), hdfs_(hdfs), conf_(std::move(conf)),
      blockManager_(clusterRef, conf_),
      engine_(clusterRef, hdfs, conf_)
{
    if (conf_.executorCores <= 0)
        fatal("JobScheduler: executorCores must be positive");
    if (conf_.speculation)
        fatal("JobScheduler: speculative execution is not supported "
              "in multi-tenant mode");
    if (conf_.unifiedMemory)
        engine_.setMemoryModel(&blockManager_);
    engine_.setArbiter(this);
    busy_.assign(static_cast<std::size_t>(clusterRef.numSlaves()), 0);
    Pool defaultPool;
    pools_.push_back(std::move(defaultPool));
}

JobScheduler::~JobScheduler() = default;

void
JobScheduler::definePool(const PoolConfig &config)
{
    if (config.name.empty())
        fatal("JobScheduler: pool name must be non-empty");
    if (config.weight <= 0.0)
        fatal("JobScheduler: pool %s: weight must be positive",
              config.name.c_str());
    if (config.minShare < 0)
        fatal("JobScheduler: pool %s: minShare must be >= 0",
              config.name.c_str());
    for (Pool &pool : pools_) {
        if (pool.config.name != config.name)
            continue;
        // The implicit default pool may be reconfigured while unused.
        if (config.name == "default" && pool.members.empty()) {
            pool.config = config;
            return;
        }
        fatal("JobScheduler: duplicate pool %s", config.name.c_str());
    }
    Pool pool;
    pool.config = config;
    pools_.push_back(std::move(pool));
}

JobContext &
JobScheduler::addTenant(const std::string &tenantName,
                        const std::string &pool)
{
    const int poolIdx = poolIndexByName(pool);
    const int id = static_cast<int>(tenants_.size());
    Tenant tenant;
    tenant.context.reset(new JobContext(*this, id, tenantName, poolIdx));
    tenants_.push_back(std::move(tenant));
    pools_[static_cast<std::size_t>(poolIdx)].members.push_back(id);
    if (collector_ != nullptr)
        collector_->setThreadName(trace::kDriverPid, trace::jobTid(id),
                                  "job " + tenantName);
    return *tenants_.back().context;
}

void
JobScheduler::setFaultInjector(faults::FaultInjector *injector)
{
    injector_ = injector;
    engine_.setFaultInjector(injector);
    hdfs_.setFaultInjector(injector);
}

void
JobScheduler::setTraceCollector(trace::TraceCollector *collector)
{
    collector_ = collector;
    engine_.setTraceCollector(collector);
    blockManager_.setTraceCollector(collector);
    if (collector_ == nullptr)
        return;
    for (const Tenant &tenant : tenants_)
        collector_->setThreadName(
            trace::kDriverPid, trace::jobTid(tenant.context->id()),
            "job " + tenant.context->name());
}

void
JobScheduler::run()
{
    offerCores();
    cluster_.simulator().run();
    for (const Tenant &tenant : tenants_)
        if (!tenant.context->idle())
            fatal("JobScheduler: tenant %s still has queued work after "
                  "the event queue drained",
                  tenant.context->name().c_str());
}

TenancySummary
JobScheduler::tenancy() const
{
    TenancySummary summary;
    for (const Tenant &tenant : tenants_) {
        const JobContext &context = *tenant.context;
        TenantSummary ts;
        ts.name = context.name();
        ts.pool = pools_[static_cast<std::size_t>(context.poolIndex())]
                      .config.name;
        ts.jobs = context.jobsCompleted();
        ts.submitSec = ticksToSeconds(context.submitTick());
        ts.doneSec = ticksToSeconds(context.doneTick());
        ts.coreSeconds = tenant.coreSeconds;
        summary.tenants.push_back(std::move(ts));
    }
    for (const Pool &pool : pools_) {
        PoolSummary ps;
        ps.name = pool.config.name;
        ps.fair = pool.config.fair;
        ps.weight = pool.config.weight;
        ps.minShare = pool.config.minShare;
        ps.coreSeconds = pool.coreSeconds;
        summary.pools.push_back(std::move(ps));
    }
    return summary;
}

int
JobScheduler::runningTasks(int tenant) const
{
    return tenants_[static_cast<std::size_t>(tenant)].runningTasks;
}

void
JobScheduler::attemptFinished(int node, int tag)
{
    Tenant &tenant = tenants_[static_cast<std::size_t>(tag)];
    Pool &pool =
        pools_[static_cast<std::size_t>(tenant.context->poolIndex())];
    chargeTenant(tenant);
    chargePool(pool);
    --tenant.runningTasks;
    --pool.runningTasks;
    --busy_[static_cast<std::size_t>(node)];
    if (tenant.runningTasks < 0 ||
        busy_[static_cast<std::size_t>(node)] < 0)
        panic("JobScheduler: core accounting underflow");
    pump(node);
}

void
JobScheduler::offerCore(int node)
{
    pump(node);
}

void
JobScheduler::offerCores()
{
    // Round-robin over nodes: hand out one core per node per sweep so
    // a stage's first wave spreads like Spark's resource offers do.
    const int cores = engine_.effectiveCores();
    bool progress = true;
    while (progress) {
        progress = false;
        for (int node : cluster_.aliveNodes()) {
            if (busy_[static_cast<std::size_t>(node)] >= cores)
                continue;
            if (launchOne(node))
                progress = true;
        }
    }
}

void
JobScheduler::pump(int node)
{
    if (!cluster_.nodeAlive(node))
        return;
    const int cores = engine_.effectiveCores();
    while (busy_[static_cast<std::size_t>(node)] < cores &&
           launchOne(node))
        ;
}

bool
JobScheduler::launchOne(int node)
{
    // Order pools by the fair-sharing comparator (the root pool is
    // always FAIR across pools, like Spark's), then offer the core to
    // each pool's jobs: FIFO pools in submission order, FAIR pools by
    // fewest running tasks first.
    std::vector<int> poolOrder(pools_.size());
    std::iota(poolOrder.begin(), poolOrder.end(), 0);
    std::stable_sort(
        poolOrder.begin(), poolOrder.end(), [this](int a, int b) {
            const Pool &pa = pools_[static_cast<std::size_t>(a)];
            const Pool &pb = pools_[static_cast<std::size_t>(b)];
            return fairBefore(
                ShareState{pa.runningTasks, pa.config.weight,
                           pa.config.minShare, a},
                ShareState{pb.runningTasks, pb.config.weight,
                           pb.config.minShare, b});
        });
    for (int poolIdx : poolOrder) {
        Pool &pool = pools_[static_cast<std::size_t>(poolIdx)];
        std::vector<int> members = pool.members;
        if (pool.config.fair) {
            // Every job inside a pool has weight 1 and minShare 0
            // (Spark's TaskSetManagers), so FAIR inside a pool is
            // fewest-running-tasks-first with submission-order ties.
            std::vector<int> order(members.size());
            std::iota(order.begin(), order.end(), 0);
            std::stable_sort(
                order.begin(), order.end(),
                [this, &members](int a, int b) {
                    const Tenant &ta = tenants_[static_cast<std::size_t>(
                        members[static_cast<std::size_t>(a)])];
                    const Tenant &tb = tenants_[static_cast<std::size_t>(
                        members[static_cast<std::size_t>(b)])];
                    return fairBefore(
                        ShareState{ta.runningTasks, 1.0, 0, a},
                        ShareState{tb.runningTasks, 1.0, 0, b});
                });
            std::vector<int> sorted;
            sorted.reserve(members.size());
            for (int i : order)
                sorted.push_back(members[static_cast<std::size_t>(i)]);
            members = std::move(sorted);
        }
        for (int tenantId : members) {
            Tenant &tenant =
                tenants_[static_cast<std::size_t>(tenantId)];
            const spark::TaskEngine::StageRef &run =
                tenant.context->activeRun();
            if (run == nullptr || !engine_.hasRunnableWork(run))
                continue;
            if (!engine_.tryLaunch(run, node))
                continue;
            chargeTenant(tenant);
            chargePool(pool);
            ++tenant.runningTasks;
            ++pool.runningTasks;
            ++busy_[static_cast<std::size_t>(node)];
            return true;
        }
    }
    return false;
}

void
JobScheduler::chargeTenant(Tenant &tenant)
{
    const Tick now = cluster_.simulator().now();
    tenant.coreSeconds +=
        ticksToSeconds(now - tenant.lastChange) * tenant.runningTasks;
    tenant.lastChange = now;
}

void
JobScheduler::chargePool(Pool &pool)
{
    const Tick now = cluster_.simulator().now();
    pool.coreSeconds +=
        ticksToSeconds(now - pool.lastChange) * pool.runningTasks;
    pool.lastChange = now;
}

int
JobScheduler::poolIndexByName(const std::string &pool) const
{
    for (std::size_t i = 0; i < pools_.size(); ++i)
        if (pools_[i].config.name == pool)
            return static_cast<int>(i);
    fatal("JobScheduler: unknown pool %s (definePool first)",
          pool.c_str());
}

} // namespace doppio::sched
