/**
 * @file
 * Text format describing a multi-tenant run (`--jobs-spec FILE`).
 *
 * Line-based, `#` starts a comment. Three directives:
 *
 *     pool <name> fifo|fair [weight=W] [minshare=N]
 *     job <workload> [pool=P] [start=T]
 *     stream <template> [rate=R] [batches=N] [backlog=K] [slo=S]
 *            [poisson] [batch-mib=M] [pool=P] [start=T]
 *            [checkpoint=T]
 *
 * `job` lines run one registered workload (lr-small, terasort, ...)
 * as a batch tenant; `stream` lines run a micro-batch streaming
 * tenant from a streaming template ("lr" or "agg"). `start=T` delays
 * the tenant's first submission by T simulated seconds. Tenants are
 * admitted in file order, which is also the FIFO order inside pools.
 */

#ifndef DOPPIO_SCHED_JOBS_SPEC_H
#define DOPPIO_SCHED_JOBS_SPEC_H

#include <string>
#include <vector>

#include "common/units.h"
#include "sched/pool.h"
#include "sched/streaming.h"

namespace doppio::sched {

/** One tenant line of a jobs-spec file. */
struct TenantSpec
{
    enum class Kind { Batch, Stream };

    Kind kind = Kind::Batch;
    /** Registered workload name (Batch) or stream template (Stream). */
    std::string workload;
    std::string pool = "default";
    double startSec = 0.0; //!< delay of the first submission
    /** Stream only: arrival process and stability parameters. */
    StreamingOptions stream;
    /** Stream only: bytes of input per micro-batch (0 = template
     *  default). */
    Bytes batchBytes = 0;
};

/** A parsed jobs-spec file: pool definitions plus tenant lines. */
struct MultiJobSpec
{
    std::vector<PoolConfig> pools;
    std::vector<TenantSpec> tenants;

    /** Parse jobs-spec text; fatal() with line context on errors. */
    static MultiJobSpec parse(const std::string &text);

    /** Read and parse @p path; fatal() when unreadable. */
    static MultiJobSpec fromFile(const std::string &path);
};

} // namespace doppio::sched

#endif // DOPPIO_SCHED_JOBS_SPEC_H
