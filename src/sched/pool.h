/**
 * @file
 * Spark-1.6-style scheduling pools.
 *
 * A pool groups jobs for resource arbitration. Pools themselves are
 * always ordered by the fair-sharing comparator (Spark's root pool in
 * FAIR mode); each pool orders the jobs inside it either FIFO
 * (submission order, Spark's per-pool default) or FAIR (fewest running
 * tasks first — every job inside a pool has weight 1 and minShare 0,
 * as Spark's TaskSetManagers do).
 */

#ifndef DOPPIO_SCHED_POOL_H
#define DOPPIO_SCHED_POOL_H

#include <string>

namespace doppio::sched {

/** Static description of one pool (fairscheduler.xml entry). */
struct PoolConfig
{
    std::string name = "default";
    /** Within-pool ordering: FAIR (true) or FIFO (false). */
    bool fair = false;
    /** Relative share of free cores against sibling pools. */
    double weight = 1.0;
    /** Cores this pool receives before any weighted split. */
    int minShare = 0;
};

/** Dynamic share of one schedulable (pool or job), for ordering. */
struct ShareState
{
    int runningTasks = 0;
    double weight = 1.0;
    int minShare = 0;
    /** Definition/submission index, the deterministic tie-breaker
     *  (Spark breaks ties by name). */
    int index = 0;
};

/**
 * Spark 1.6 FairSchedulingAlgorithm: a schedulable below its minShare
 * goes first (needy before satisfied, then by minShare ratio); with
 * both satisfied, the lower runningTasks/weight ratio wins. @return
 * true when @p a should be offered resources before @p b.
 */
bool fairBefore(const ShareState &a, const ShareState &b);

} // namespace doppio::sched

#endif // DOPPIO_SCHED_POOL_H
