#include "sched/jobs_spec.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace doppio::sched {

namespace {

/** Split one line into whitespace-separated tokens, dropping the
 *  `#`-comment tail. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string token;
    while (is >> token) {
        if (token[0] == '#')
            break;
        tokens.push_back(token);
    }
    return tokens;
}

/** Split "key=value"; @return true and fills both when '=' present. */
bool
keyValue(const std::string &token, std::string &key, std::string &value)
{
    const auto eq = token.find('=');
    if (eq == std::string::npos)
        return false;
    key = token.substr(0, eq);
    value = token.substr(eq + 1);
    return true;
}

double
parseNumber(const std::string &value, int lineNo, const char *what)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0' || value.empty())
        fatal("jobs-spec line %d: %s: not a number: '%s'", lineNo,
              what, value.c_str());
    return v;
}

int
parseInt(const std::string &value, int lineNo, const char *what)
{
    const double v = parseNumber(value, lineNo, what);
    const int i = static_cast<int>(v);
    if (static_cast<double>(i) != v)
        fatal("jobs-spec line %d: %s: not an integer: '%s'", lineNo,
              what, value.c_str());
    return i;
}

} // namespace

MultiJobSpec
MultiJobSpec::parse(const std::string &text)
{
    MultiJobSpec spec;
    std::istringstream is(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        const std::vector<std::string> tokens = tokenize(line);
        if (tokens.empty())
            continue;
        const std::string &directive = tokens[0];
        if (directive == "pool") {
            if (tokens.size() < 3)
                fatal("jobs-spec line %d: pool needs a name and a "
                      "mode: pool <name> fifo|fair [weight=W] "
                      "[minshare=N]",
                      lineNo);
            PoolConfig pool;
            pool.name = tokens[1];
            if (tokens[2] == "fifo")
                pool.fair = false;
            else if (tokens[2] == "fair")
                pool.fair = true;
            else
                fatal("jobs-spec line %d: pool mode must be fifo or "
                      "fair, got '%s'",
                      lineNo, tokens[2].c_str());
            for (std::size_t i = 3; i < tokens.size(); ++i) {
                std::string key, value;
                if (!keyValue(tokens[i], key, value))
                    fatal("jobs-spec line %d: unexpected token '%s'",
                          lineNo, tokens[i].c_str());
                if (key == "weight")
                    pool.weight = parseNumber(value, lineNo, "weight");
                else if (key == "minshare")
                    pool.minShare = parseInt(value, lineNo, "minshare");
                else
                    fatal("jobs-spec line %d: unknown pool option "
                          "'%s'",
                          lineNo, key.c_str());
            }
            spec.pools.push_back(std::move(pool));
            continue;
        }
        if (directive == "job" || directive == "stream") {
            if (tokens.size() < 2)
                fatal("jobs-spec line %d: %s needs a workload name",
                      lineNo, directive.c_str());
            TenantSpec tenant;
            tenant.kind = directive == "job" ? TenantSpec::Kind::Batch
                                             : TenantSpec::Kind::Stream;
            tenant.workload = tokens[1];
            for (std::size_t i = 2; i < tokens.size(); ++i) {
                std::string key, value;
                if (!keyValue(tokens[i], key, value)) {
                    if (tenant.kind == TenantSpec::Kind::Stream &&
                        tokens[i] == "poisson") {
                        tenant.stream.poisson = true;
                        continue;
                    }
                    fatal("jobs-spec line %d: unexpected token '%s'",
                          lineNo, tokens[i].c_str());
                }
                if (key == "pool") {
                    tenant.pool = value;
                } else if (key == "start") {
                    tenant.startSec =
                        parseNumber(value, lineNo, "start");
                } else if (tenant.kind == TenantSpec::Kind::Stream &&
                           key == "rate") {
                    tenant.stream.ratePerSec =
                        parseNumber(value, lineNo, "rate");
                } else if (tenant.kind == TenantSpec::Kind::Stream &&
                           key == "batches") {
                    tenant.stream.batches =
                        parseInt(value, lineNo, "batches");
                } else if (tenant.kind == TenantSpec::Kind::Stream &&
                           key == "backlog") {
                    tenant.stream.maxBacklog =
                        parseInt(value, lineNo, "backlog");
                } else if (tenant.kind == TenantSpec::Kind::Stream &&
                           key == "slo") {
                    tenant.stream.sloSeconds =
                        parseNumber(value, lineNo, "slo");
                } else if (tenant.kind == TenantSpec::Kind::Stream &&
                           key == "batch-mib") {
                    tenant.batchBytes = mib(
                        parseNumber(value, lineNo, "batch-mib"));
                } else if (tenant.kind == TenantSpec::Kind::Stream &&
                           key == "checkpoint") {
                    tenant.stream.checkpointIntervalSec =
                        parseNumber(value, lineNo, "checkpoint");
                    if (tenant.stream.checkpointIntervalSec < 0.0)
                        fatal("jobs-spec line %d: checkpoint must be "
                              ">= 0 (0 = recover by full replay)",
                              lineNo);
                } else {
                    fatal("jobs-spec line %d: unknown %s option '%s'",
                          lineNo, directive.c_str(), key.c_str());
                }
            }
            if (tenant.startSec < 0.0)
                fatal("jobs-spec line %d: start must be >= 0", lineNo);
            spec.tenants.push_back(std::move(tenant));
            continue;
        }
        fatal("jobs-spec line %d: unknown directive '%s' (expected "
              "pool, job or stream)",
              lineNo, directive.c_str());
    }
    if (spec.tenants.empty())
        fatal("jobs-spec: no job or stream lines");
    return spec;
}

MultiJobSpec
MultiJobSpec::fromFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("jobs-spec: cannot read %s", path.c_str());
    std::ostringstream text;
    text << is.rdbuf();
    return parse(text.str());
}

} // namespace doppio::sched
