#include "sched/streaming.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "sim/simulator.h"
#include "trace/trace_collector.h"

namespace doppio::sched {

namespace {

/** Nearest-rank percentile of an ascending-sorted sample. */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    if (rank == 0)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

/** Seed-mixing constant for the arrival process stream. */
constexpr std::uint64_t kArrivalStream = 0x53545245414d32ULL;

} // namespace

StreamingDriver::StreamingDriver(StreamingOptions options)
    : options_(options)
{
    if (options_.ratePerSec <= 0.0)
        fatal("StreamingDriver: ratePerSec must be positive");
    if (options_.batches <= 0)
        fatal("StreamingDriver: batches must be positive");
    if (options_.maxBacklog <= 0)
        fatal("StreamingDriver: maxBacklog must be positive");
}

void
StreamingDriver::start(JobScheduler &scheduler, JobContext &context,
                       BatchBuilder builder,
                       std::function<void()> onAllDone)
{
    scheduler_ = &scheduler;
    context_ = &context;
    builder_ = std::move(builder);
    onAllDone_ = std::move(onAllDone);
    stats_ = spark::StreamingMetrics{};
    stats_.ratePerSec = options_.ratePerSec;
    stats_.sloSeconds = options_.sloSeconds;
    stats_.maxBacklog = options_.maxBacklog;

    // Precompute the whole arrival process so arrivals are independent
    // of service completions: deterministic spacing 1/λ, or i.i.d.
    // exponential gaps (a Poisson process) from a seeded stream.
    sim::Simulator &sim = scheduler.clusterRef().simulator();
    const double gapSec = 1.0 / options_.ratePerSec;
    Rng rng(scheduler.clusterRef().config().seed ^ kArrivalStream ^
            (static_cast<std::uint64_t>(context.id()) << 32));
    double atSec = 0.0;
    for (int k = 0; k < options_.batches; ++k) {
        atSec += options_.poisson
                     ? -std::log(1.0 - rng.uniform()) * gapSec
                     : gapSec;
        sim.scheduleAt(sim.now() + secondsToTicks(atSec),
                       [this, k]() { arrive(k); });
    }
}

void
StreamingDriver::arrive(int index)
{
    sim::Simulator &sim = scheduler_->clusterRef().simulator();
    ++stats_.arrivals;
    ++arrived_;
    trace::TraceCollector *collector = scheduler_->collector();
    if (pending_ >= options_.maxBacklog) {
        // Backpressure: the receiver's bounded queue is full, the
        // batch is lost (counted — the run is unstable by definition).
        ++stats_.dropped;
        if (collector != nullptr)
            collector->instant(
                trace::kDriverPid, trace::jobTid(context_->id()),
                "stream", "drop", sim.now(),
                trace::TraceArgs().add("batch", index));
        maybeFinish();
        return;
    }
    ++pending_;
    stats_.peakBacklog = std::max(stats_.peakBacklog, pending_);
    if (collector != nullptr)
        collector->instant(trace::kDriverPid,
                           trace::jobTid(context_->id()), "stream",
                           "arrive", sim.now(),
                           trace::TraceArgs()
                               .add("batch", index)
                               .add("backlog", pending_));
    const Tick arrivalTick = sim.now();
    BatchJob batch = builder_(*context_, index);
    JobContext::JobRequest request;
    request.name = std::move(batch.name);
    request.target = std::move(batch.target);
    request.action = batch.action;
    request.onDone = [this, arrivalTick]() {
        finishBatch(arrivalTick);
    };
    context_->submitJob(std::move(request));
}

void
StreamingDriver::finishBatch(Tick arrivalTick)
{
    sim::Simulator &sim = scheduler_->clusterRef().simulator();
    --pending_;
    ++stats_.processed;
    const double latency = ticksToSeconds(sim.now() - arrivalTick);
    latencies_.push_back(latency);
    services_.push_back(context_->appMetrics().jobs.back().seconds());
    if (options_.sloSeconds > 0.0 && latency > options_.sloSeconds)
        ++stats_.sloViolations;
    maybeFinish();
}

void
StreamingDriver::maybeFinish()
{
    if (arrived_ < options_.batches || pending_ != 0)
        return;
    std::vector<double> sorted = latencies_;
    std::sort(sorted.begin(), sorted.end());
    double latencySum = 0.0;
    for (double v : sorted)
        latencySum += v;
    double serviceSum = 0.0;
    for (double v : services_)
        serviceSum += v;
    const double n = sorted.empty()
                         ? 1.0
                         : static_cast<double>(sorted.size());
    stats_.meanLatencySec = latencySum / n;
    stats_.p50LatencySec = percentile(sorted, 0.50);
    stats_.p99LatencySec = percentile(sorted, 0.99);
    stats_.maxLatencySec = sorted.empty() ? 0.0 : sorted.back();
    stats_.meanServiceSec =
        services_.empty()
            ? 0.0
            : serviceSum / static_cast<double>(services_.size());
    if (onAllDone_)
        onAllDone_();
}

} // namespace doppio::sched
