#include "sched/streaming.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "common/stats.h"
#include "sim/simulator.h"
#include "spark/recovery.h"
#include "trace/trace_collector.h"

namespace doppio::sched {

namespace {

/** Seed-mixing constant for the arrival process stream. */
constexpr std::uint64_t kArrivalStream = 0x53545245414d32ULL;

} // namespace

StreamingDriver::StreamingDriver(StreamingOptions options)
    : options_(options)
{
    if (options_.ratePerSec <= 0.0)
        fatal("StreamingDriver: ratePerSec must be positive");
    if (options_.batches <= 0)
        fatal("StreamingDriver: batches must be positive");
    if (options_.maxBacklog <= 0)
        fatal("StreamingDriver: maxBacklog must be positive");
}

StreamingDriver::~StreamingDriver()
{
    if (aliveFlag_)
        *aliveFlag_ = false;
}

void
StreamingDriver::enableRecovery(CheckpointBuilder checkpointBuilder,
                                RecoveryBuilder recoveryBuilder)
{
    checkpointBuilder_ = std::move(checkpointBuilder);
    recoveryBuilder_ = std::move(recoveryBuilder);
}

void
StreamingDriver::start(JobScheduler &scheduler, JobContext &context,
                       BatchBuilder builder,
                       std::function<void()> onAllDone)
{
    scheduler_ = &scheduler;
    context_ = &context;
    builder_ = std::move(builder);
    onAllDone_ = std::move(onAllDone);
    stats_ = spark::StreamingMetrics{};
    stats_.ratePerSec = options_.ratePerSec;
    stats_.sloSeconds = options_.sloSeconds;
    stats_.maxBacklog = options_.maxBacklog;
    stats_.checkpointIntervalSec = options_.checkpointIntervalSec;

    if (options_.checkpointIntervalSec >= 0.0) {
        if (!recoveryBuilder_)
            fatal("StreamingDriver: checkpointIntervalSec set but no "
                  "recovery builder attached (enableRecovery)");
        if (options_.checkpointIntervalSec > 0.0 && !checkpointBuilder_)
            fatal("StreamingDriver: periodic checkpoints need a "
                  "checkpoint builder (enableRecovery)");
        lastCheckpointTick_ =
            scheduler.clusterRef().simulator().now();
        aliveFlag_ = std::make_shared<bool>(true);
        std::shared_ptr<bool> alive = aliveFlag_;
        scheduler.clusterRef().addLivenessObserver(
            [this, alive](int node, bool up) {
                if (!*alive || up)
                    return;
                onNodeLost(node);
            });
    }

    // Precompute the whole arrival process so arrivals are independent
    // of service completions: deterministic spacing 1/λ, or i.i.d.
    // exponential gaps (a Poisson process) from a seeded stream.
    sim::Simulator &sim = scheduler.clusterRef().simulator();
    const double gapSec = 1.0 / options_.ratePerSec;
    Rng rng(scheduler.clusterRef().config().seed ^ kArrivalStream ^
            (static_cast<std::uint64_t>(context.id()) << 32));
    double atSec = 0.0;
    for (int k = 0; k < options_.batches; ++k) {
        atSec += options_.poisson
                     ? -std::log(1.0 - rng.uniform()) * gapSec
                     : gapSec;
        sim.scheduleAt(sim.now() + secondsToTicks(atSec),
                       [this, k]() { arrive(k); });
    }
}

void
StreamingDriver::arrive(int index)
{
    sim::Simulator &sim = scheduler_->clusterRef().simulator();
    ++stats_.arrivals;
    ++arrived_;
    trace::TraceCollector *collector = scheduler_->collector();
    if (pending_ >= options_.maxBacklog) {
        // Backpressure: the receiver's bounded queue is full, the
        // batch is lost (counted — the run is unstable by definition).
        ++stats_.dropped;
        if (collector != nullptr)
            collector->instant(
                trace::kDriverPid, trace::jobTid(context_->id()),
                "stream", "drop", sim.now(),
                trace::TraceArgs().add("batch", index));
        maybeFinish();
        return;
    }
    ++pending_;
    stats_.peakBacklog = std::max(stats_.peakBacklog, pending_);
    if (collector != nullptr)
        collector->instant(trace::kDriverPid,
                           trace::jobTid(context_->id()), "stream",
                           "arrive", sim.now(),
                           trace::TraceArgs()
                               .add("batch", index)
                               .add("backlog", pending_));
    const Tick arrivalTick = sim.now();
    BatchJob batch = builder_(*context_, index);
    JobContext::JobRequest request;
    request.name = std::move(batch.name);
    request.target = std::move(batch.target);
    request.action = batch.action;
    request.onDone = [this, index, arrivalTick]() {
        finishBatch(index, arrivalTick);
    };
    context_->submitJob(std::move(request));
}

void
StreamingDriver::finishBatch(int index, Tick arrivalTick)
{
    sim::Simulator &sim = scheduler_->clusterRef().simulator();
    --pending_;
    ++stats_.processed;
    lastCompletedBatch_ = std::max(lastCompletedBatch_, index);
    const double latency = ticksToSeconds(sim.now() - arrivalTick);
    latencies_.push_back(latency);
    services_.push_back(context_->appMetrics().jobs.back().seconds());
    if (options_.sloSeconds > 0.0 && latency > options_.sloSeconds)
        ++stats_.sloViolations;
    maybeCheckpoint();
    maybeFinish();
}

void
StreamingDriver::maybeCheckpoint()
{
    if (options_.checkpointIntervalSec <= 0.0 || checkpointInFlight_)
        return;
    sim::Simulator &sim = scheduler_->clusterRef().simulator();
    const double sinceSec =
        ticksToSeconds(sim.now() - lastCheckpointTick_);
    if (sinceSec < options_.checkpointIntervalSec)
        return;
    if (lastCompletedBatch_ <= lastCheckpointBatch_)
        return; // nothing new to cover
    const int covering = lastCompletedBatch_;
    checkpointInFlight_ = true;
    lastCheckpointTick_ = sim.now();
    ++pendingAux_;
    BatchJob job = checkpointBuilder_(*context_, covering);
    JobContext::JobRequest request;
    request.name = std::move(job.name);
    request.target = std::move(job.target);
    request.action = job.action;
    request.onDone = [this, covering]() {
        checkpointInFlight_ = false;
        lastCheckpointBatch_ = std::max(lastCheckpointBatch_, covering);
        ++stats_.checkpoints;
        --pendingAux_;
        maybeFinish();
    };
    context_->submitJob(std::move(request));
}

void
StreamingDriver::onNodeLost(int node)
{
    (void)node;
    if (recoveryInFlight_)
        return; // the queued recovery rebuilds state past this loss too
    if (lastCompletedBatch_ < 0 && lastCheckpointBatch_ < 0)
        return; // no stream state accumulated yet: nothing to rebuild
    sim::Simulator &sim = scheduler_->clusterRef().simulator();
    const Tick lostTick = sim.now();
    const spark::ReplayPlan plan = spark::planReplay(
        lastCheckpointBatch_, lastCompletedBatch_ + 1);
    recoveryInFlight_ = true;
    ++pendingAux_;
    trace::TraceCollector *collector = scheduler_->collector();
    if (collector != nullptr)
        collector->instant(trace::kDriverPid,
                           trace::jobTid(context_->id()), "stream",
                           "recovery_start", lostTick,
                           trace::TraceArgs()
                               .add("from_checkpoint",
                                    lastCheckpointBatch_)
                               .add("replay_batches", plan.count()));
    BatchJob job = recoveryBuilder_(*context_, lastCheckpointBatch_,
                                    plan.firstBatch, plan.lastBatch);
    JobContext::JobRequest request;
    request.name = std::move(job.name);
    request.target = std::move(job.target);
    request.action = job.action;
    request.onDone = [this, lostTick]() {
        recoveryInFlight_ = false;
        ++stats_.recoveries;
        const double span = ticksToSeconds(
            scheduler_->clusterRef().simulator().now() - lostTick);
        stats_.recoverySecondsTotal += span;
        stats_.maxRecoverySec = std::max(stats_.maxRecoverySec, span);
        --pendingAux_;
        maybeFinish();
    };
    context_->submitJob(std::move(request));
}

void
StreamingDriver::maybeFinish()
{
    if (arrived_ < options_.batches || pending_ != 0 ||
        pendingAux_ != 0)
        return;
    std::vector<double> sorted = latencies_;
    std::sort(sorted.begin(), sorted.end());
    double latencySum = 0.0;
    for (double v : sorted)
        latencySum += v;
    double serviceSum = 0.0;
    for (double v : services_)
        serviceSum += v;
    const double n = sorted.empty()
                         ? 1.0
                         : static_cast<double>(sorted.size());
    stats_.meanLatencySec = latencySum / n;
    stats_.p50LatencySec = quantile(sorted, 0.50);
    stats_.p99LatencySec = quantile(sorted, 0.99);
    stats_.maxLatencySec = sorted.empty() ? 0.0 : sorted.back();
    stats_.meanServiceSec =
        services_.empty()
            ? 0.0
            : serviceSum / static_cast<double>(services_.size());
    // A post-drain failure can re-enter here after a late recovery
    // job completes; the stats recompute is idempotent but the
    // completion callback must fire exactly once.
    if (onAllDone_) {
        auto done = std::move(onAllDone_);
        onAllDone_ = nullptr;
        done();
    }
}

} // namespace doppio::sched
