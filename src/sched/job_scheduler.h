/**
 * @file
 * Multi-tenant job scheduler.
 *
 * A JobScheduler admits many concurrent jobs into one shared simulated
 * cluster: every tenant gets its own JobContext — its own DAG
 * compiler, lineage state, metrics and fetch-failure recovery — while
 * all of them share the one Simulator, cluster, disks, page cache,
 * unified memory manager, shuffle/block state and fault injector. The
 * scheduler implements spark::CoreArbiter: whenever the shared
 * TaskEngine frees an executor core it offers the core around Spark
 * 1.6's pool hierarchy (FIFO or FAIR pools with per-pool weight and
 * minShare) in a round-robin offer loop over the free cores.
 *
 * Jobs of one tenant run sequentially in submission order, as one
 * Spark driver thread would issue them; concurrency comes from
 * tenants. Cross-job contention on disks, page cache and memory — the
 * payoff of Eq. 1's read/shuffle/spill terms under multi-tenancy — is
 * modeled by construction because every byte moves through the shared
 * devices.
 */

#ifndef DOPPIO_SCHED_JOB_SCHEDULER_H
#define DOPPIO_SCHED_JOB_SCHEDULER_H

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "dfs/hdfs.h"
#include "sched/pool.h"
#include "spark/block_manager.h"
#include "spark/dag_scheduler.h"
#include "spark/metrics.h"
#include "spark/rdd.h"
#include "spark/spark_conf.h"
#include "spark/task_engine.h"

namespace doppio::faults {
class FaultInjector;
}

namespace doppio::trace {
class TraceCollector;
}

namespace doppio::sched {

class JobScheduler;

/**
 * One tenant's asynchronous Spark driver: compiles jobs at start (so
 * materialization state reflects everything that ran before), walks
 * their stages through the shared TaskEngine via submitStage, and
 * replays SparkContext's fetch-failure recovery (recompute the lost
 * map outputs from lineage, rerun the remaining partitions, fold into
 * one merged stage entry) as a continuation chain instead of a loop.
 */
class JobContext
{
  public:
    /** One queued action-job of this tenant. */
    struct JobRequest
    {
        std::string name;
        spark::RddRef target;
        spark::ActionSpec action;
        /** RDDs unpersisted after the job completes (generation
         *  cleanup, e.g. PageRank's grandparent drop). */
        std::vector<spark::RddRef> unpersistAfter;
        /** Fires after the job's metrics are recorded and the
         *  unpersists ran. */
        std::function<void()> onDone;
    };

    /** Leaf RDD over a registered HDFS file (partitions = blocks). */
    spark::RddRef hadoopFile(const std::string &fileName);

    /**
     * Queue one job. Jobs of a context run sequentially in submission
     * order; the first submission starts executing immediately (the
     * caller still has to drive the simulator, or be inside it).
     */
    void submitJob(JobRequest request);

    /** @return true when no job is queued or executing. */
    bool idle() const { return active_ == nullptr && queue_.empty(); }

    /** @return this tenant's accumulated application metrics. */
    const spark::AppMetrics &appMetrics() const { return metrics_; }
    spark::AppMetrics &appMetrics() { return metrics_; }

    const std::string &name() const { return name_; }
    int id() const { return id_; }
    int poolIndex() const { return poolIndex_; }
    /** Simulation tick of the first submitJob call. */
    Tick submitTick() const { return submitTick_; }
    /** Simulation tick the last job completed at. */
    Tick doneTick() const { return doneTick_; }
    /** Completed jobs so far. */
    int jobsCompleted() const
    {
        return static_cast<int>(metrics_.jobs.size());
    }

    /** Stage currently executing, or nullptr between stages. */
    const spark::TaskEngine::StageRef &activeRun() const
    {
        return activeRun_;
    }

  private:
    friend class JobScheduler;

    /** Rolling state of one fetch-failure recovery loop. */
    struct RecoveryState
    {
        spark::StageMetrics merged;
        std::uint64_t completed = 0;
        int attempts = 1;
    };

    /** The executing job. */
    struct ActiveJob
    {
        JobRequest request;
        spark::JobSpec spec;
        std::size_t stageIdx = 0;
        spark::JobMetrics metrics;
    };

    using StageCont = std::function<void(spark::StageMetrics)>;

    JobContext(JobScheduler &scheduler, int id, std::string tenantName,
               int poolIndex);

    void startNextJob();
    void runNextStage();
    void finishJob();

    /** Run one stage with SparkContext-equivalent recovery. */
    void runStageRecoverable(const spark::StageSpec *stage, int depth,
                             StageCont cont);
    void recoverStep(const spark::StageSpec *stage, int depth,
                     std::shared_ptr<RecoveryState> state,
                     StageCont cont);

    /** Submit @p stage to the engine and offer cores. */
    void beginStage(const spark::StageSpec *stage, StageCont cont);

    /** Keep a derived (recovery/remainder) spec alive for its run. */
    const spark::StageSpec *ownSpec(spark::StageSpec spec);

    JobScheduler &scheduler_;
    int id_ = 0;
    std::string name_;
    int poolIndex_ = 0;
    spark::DagScheduler dag_;
    spark::AppMetrics metrics_;
    std::deque<JobRequest> queue_;
    std::unique_ptr<ActiveJob> active_;
    /// Finished jobs whose StageSpecs must outlive their last task
    /// event: a stage completes while a losing/aborted attempt is
    /// still draining async I/O, and that attempt's next phase
    /// boundary dereferences its TaskGroupSpec (submitStage's "spec
    /// must outlive the run" contract).
    std::vector<std::unique_ptr<ActiveJob>> retired_;
    spark::TaskEngine::StageRef activeRun_;
    /// Specs of executed shuffle map stages, for lineage recovery.
    std::unordered_map<std::string, spark::StageSpec> shuffleProducers_;
    /// Stable storage for recovery/remainder specs (engine runs keep
    /// raw pointers until completion).
    std::deque<spark::StageSpec> ownedSpecs_;
    Tick submitTick_ = 0;
    Tick doneTick_ = 0;
    bool submitted_ = false;
};

/** Per-tenant slice of a finished multi-tenant run. */
struct TenantSummary
{
    std::string name;
    std::string pool;
    int jobs = 0;             //!< completed jobs
    double submitSec = 0.0;   //!< first submission (simulated seconds)
    double doneSec = 0.0;     //!< last job completion
    double coreSeconds = 0.0; //!< integral of occupied cores over time
    /** Streaming tenants with the recovery path enabled also report
     *  their checkpoint/recovery record and whether every recovery
     *  stayed within the checkpoint-interval SLO (filled by
     *  workloads::runMultiTenant from the driver's stats). */
    bool streamRecovery = false;
    double checkpointIntervalSec = -1.0;
    std::uint64_t checkpoints = 0;
    std::uint64_t recoveries = 0;
    double maxRecoverySec = 0.0;

    /** Recovery-time SLO: every observed recovery completed within
     *  one checkpoint interval (vacuously true with none observed;
     *  interval 0 = unbounded replay, met only if never exercised). */
    bool
    recoverySloMet() const
    {
        if (recoveries == 0)
            return true;
        return checkpointIntervalSec > 0.0 &&
               maxRecoverySec <= checkpointIntervalSec;
    }
};

/** Per-pool slice of a finished multi-tenant run. */
struct PoolSummary
{
    std::string name;
    bool fair = false;
    double weight = 1.0;
    int minShare = 0;
    double coreSeconds = 0.0;
};

/** The "tenancy" metrics block of a multi-tenant run. */
struct TenancySummary
{
    std::vector<TenantSummary> tenants;
    std::vector<PoolSummary> pools;

    double totalCoreSeconds() const;
};

/** Admits concurrent jobs into one shared cluster (see file docs). */
class JobScheduler : public spark::CoreArbiter
{
  public:
    JobScheduler(cluster::Cluster &clusterRef, dfs::Hdfs &hdfs,
                 spark::SparkConf conf);
    ~JobScheduler() override;

    JobScheduler(const JobScheduler &) = delete;
    JobScheduler &operator=(const JobScheduler &) = delete;

    /**
     * Define a pool before any tenant references it. A "default" FIFO
     * pool of weight 1 always exists. fatal() on duplicates.
     */
    void definePool(const PoolConfig &config);

    /**
     * Register a tenant in @p pool. Tenants share the cluster but own
     * their lineage and metrics; the returned context stays valid for
     * the scheduler's lifetime.
     */
    JobContext &addTenant(const std::string &tenantName,
                          const std::string &pool = "default");

    /**
     * Attach the run's fault injector (wires the shared engine and
     * HDFS; nullptr detaches). Armed node events act on every job in
     * flight; recovery stays per-job because each JobContext reruns
     * only its own lineage.
     */
    void setFaultInjector(faults::FaultInjector *injector);
    faults::FaultInjector *injector() const { return injector_; }

    /**
     * Attach a telemetry collector (nullptr detaches): wires the
     * shared engine and block manager, and names one driver lane per
     * tenant ("job <name>" on trace::jobTid) so Perfetto shows
     * per-job stage/batch spans instead of one interleaved lane.
     */
    void setTraceCollector(trace::TraceCollector *collector);
    trace::TraceCollector *collector() const { return collector_; }

    /**
     * Drive the simulation until every queued job completed. fatal()s
     * if a tenant still has work after the event queue drained (a
     * scheduling deadlock would otherwise pass silently).
     */
    void run();

    /** Per-tenant/per-pool shares of the finished run. */
    TenancySummary tenancy() const;

    /** Tasks of tenant @p tenant currently occupying cores (fairness
     *  probes; samples the instantaneous share). */
    int runningTasks(int tenant) const;

    cluster::Cluster &clusterRef() { return cluster_; }
    dfs::Hdfs &hdfs() { return hdfs_; }
    const spark::SparkConf &conf() const { return conf_; }
    spark::BlockManager &blockManager() { return blockManager_; }
    spark::TaskEngine &engine() { return engine_; }

    // spark::CoreArbiter
    void attemptFinished(int node, int tag) override;
    void offerCore(int node) override;
    void offerCores() override;

  private:
    friend class JobContext;

    struct Pool
    {
        PoolConfig config;
        std::vector<int> members; //!< tenant ids, submission order
        int runningTasks = 0;
        double coreSeconds = 0.0;
        Tick lastChange = 0;
    };

    struct Tenant
    {
        std::unique_ptr<JobContext> context;
        int runningTasks = 0;
        double coreSeconds = 0.0;
        Tick lastChange = 0;
    };

    /** Fill @p node's free cores by policy order. */
    void pump(int node);

    /** Offer one core of @p node; @return true if a task launched. */
    bool launchOne(int node);

    /** Integrate core-occupancy up to now before a share changes. */
    void chargeTenant(Tenant &tenant);
    void chargePool(Pool &pool);

    int poolIndexByName(const std::string &pool) const;

    cluster::Cluster &cluster_;
    dfs::Hdfs &hdfs_;
    spark::SparkConf conf_;
    spark::BlockManager blockManager_;
    spark::TaskEngine engine_;
    faults::FaultInjector *injector_ = nullptr;
    trace::TraceCollector *collector_ = nullptr;
    std::vector<Pool> pools_;
    std::vector<Tenant> tenants_;
    std::vector<int> busy_; //!< scheduler-side busy cores per node
};

} // namespace doppio::sched

#endif // DOPPIO_SCHED_JOB_SCHEDULER_H
