#include "sched/pool.h"

#include <algorithm>

namespace doppio::sched {

bool
fairBefore(const ShareState &a, const ShareState &b)
{
    const bool a_needy = a.runningTasks < a.minShare;
    const bool b_needy = b.runningTasks < b.minShare;
    if (a_needy != b_needy)
        return a_needy;
    const double a_min_ratio =
        static_cast<double>(a.runningTasks) /
        std::max(1.0, static_cast<double>(a.minShare));
    const double b_min_ratio =
        static_cast<double>(b.runningTasks) /
        std::max(1.0, static_cast<double>(b.minShare));
    const double a_weight_ratio =
        static_cast<double>(a.runningTasks) / a.weight;
    const double b_weight_ratio =
        static_cast<double>(b.runningTasks) / b.weight;
    if (a_needy) {
        if (a_min_ratio != b_min_ratio)
            return a_min_ratio < b_min_ratio;
        return a.index < b.index;
    }
    if (a_weight_ratio != b_weight_ratio)
        return a_weight_ratio < b_weight_ratio;
    return a.index < b.index;
}

} // namespace doppio::sched
