/**
 * @file
 * Micro-batch streaming driver over the multi-tenant scheduler.
 *
 * Spark Streaming's discretized-stream model: batches of input arrive
 * at rate λ (deterministic spacing or a seeded Poisson process) and
 * each becomes one Spark job on a tenant's JobContext. A bounded
 * backlog provides backpressure — when `maxBacklog` batches are
 * already waiting, new arrivals are dropped and counted. Per-batch
 * latency (arrival → job completion, i.e. queueing + service) is
 * recorded against an SLO, and the run is "stable" when nothing was
 * dropped and the backlog never saturated; sweeping λ against that
 * predicate locates the stability boundary λ* where service capacity
 * is exhausted (Doppio §6's knee, under multi-tenancy).
 */

#ifndef DOPPIO_SCHED_STREAMING_H
#define DOPPIO_SCHED_STREAMING_H

#include <functional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "sched/job_scheduler.h"
#include "spark/metrics.h"

namespace doppio::sched {

/** Arrival process and stability parameters of one stream. */
struct StreamingOptions
{
    double ratePerSec = 0.1; //!< batch arrival rate λ
    int batches = 20;        //!< arrivals to generate
    int maxBacklog = 8;      //!< queued batches before drops
    double sloSeconds = 0.0; //!< per-batch latency SLO (0 = none)
    bool poisson = false;    //!< Poisson arrivals instead of uniform
};

/** One micro-batch expressed as a job on the tenant's lineage. */
struct BatchJob
{
    std::string name;
    spark::RddRef target;
    spark::ActionSpec action;
};

/** Builds batch @p index for a tenant (its lineage, its files). */
using BatchBuilder = std::function<BatchJob(JobContext &, int)>;

/**
 * Drives one stream: schedules the arrival process on the shared
 * simulator, applies backpressure, submits each admitted batch as a
 * job of @p context and aggregates latency statistics. The driver
 * must outlive JobScheduler::run() (stack-own it next to the
 * scheduler).
 */
class StreamingDriver
{
  public:
    explicit StreamingDriver(StreamingOptions options);

    /**
     * Precompute the arrival ticks and schedule them. Call once,
     * before JobScheduler::run(); @p onAllDone (optional) fires when
     * every admitted batch completed.
     */
    void start(JobScheduler &scheduler, JobContext &context,
               BatchBuilder builder,
               std::function<void()> onAllDone = nullptr);

    /** @return the aggregated stats (complete once the run drained). */
    const spark::StreamingMetrics &stats() const { return stats_; }

  private:
    void arrive(int index);
    void finishBatch(Tick arrivalTick);
    void maybeFinish();

    StreamingOptions options_;
    JobScheduler *scheduler_ = nullptr;
    JobContext *context_ = nullptr;
    BatchBuilder builder_;
    std::function<void()> onAllDone_;
    spark::StreamingMetrics stats_;
    int pending_ = 0; //!< admitted batches not yet completed
    int arrived_ = 0; //!< arrivals seen so far
    std::vector<double> latencies_;
    std::vector<double> services_;
};

} // namespace doppio::sched

#endif // DOPPIO_SCHED_STREAMING_H
