/**
 * @file
 * Micro-batch streaming driver over the multi-tenant scheduler.
 *
 * Spark Streaming's discretized-stream model: batches of input arrive
 * at rate λ (deterministic spacing or a seeded Poisson process) and
 * each becomes one Spark job on a tenant's JobContext. A bounded
 * backlog provides backpressure — when `maxBacklog` batches are
 * already waiting, new arrivals are dropped and counted. Per-batch
 * latency (arrival → job completion, i.e. queueing + service) is
 * recorded against an SLO, and the run is "stable" when nothing was
 * dropped and the backlog never saturated; sweeping λ against that
 * predicate locates the stability boundary λ* where service capacity
 * is exhausted (Doppio §6's knee, under multi-tenancy).
 */

#ifndef DOPPIO_SCHED_STREAMING_H
#define DOPPIO_SCHED_STREAMING_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "sched/job_scheduler.h"
#include "spark/metrics.h"
#include "spark/rdd.h"

namespace doppio::sched {

/** Arrival process and stability parameters of one stream. */
struct StreamingOptions
{
    double ratePerSec = 0.1; //!< batch arrival rate λ
    int batches = 20;        //!< arrivals to generate
    int maxBacklog = 8;      //!< queued batches before drops
    double sloSeconds = 0.0; //!< per-batch latency SLO (0 = none)
    bool poisson = false;    //!< Poisson arrivals instead of uniform
    /**
     * Checkpoint-bounded recovery: < 0 (default) disables the fault
     * path entirely (no observers, byte-identical to older builds);
     * 0 enables node-loss recovery but never checkpoints (replay every
     * completed batch); > 0 additionally checkpoints the stream state
     * through HDFS on this period, so a recovery replays at most one
     * interval's worth of batches.
     */
    double checkpointIntervalSec = -1.0;
};

/** One micro-batch expressed as a job on the tenant's lineage. */
struct BatchJob
{
    std::string name;
    spark::RddRef target;
    spark::ActionSpec action;
};

/** Builds batch @p index for a tenant (its lineage, its files). */
using BatchBuilder = std::function<BatchJob(JobContext &, int)>;

/**
 * Builds the checkpoint job covering state up to batch @p lastBatch:
 * its target must carry Rdd::checkpoint() so the compile writes the
 * state through HDFS and records the lineage truncation point.
 */
using CheckpointBuilder = std::function<BatchJob(JobContext &, int)>;

/**
 * Builds the post-failure recovery job: reconstruct the stream state
 * from the checkpoint covering @p checkpointBatch (-1 = none) by
 * replaying batches [@p firstBatch, @p lastBatch] (an empty span just
 * reads the checkpoint back).
 */
using RecoveryBuilder =
    std::function<BatchJob(JobContext &, int, int, int)>;

/**
 * Drives one stream: schedules the arrival process on the shared
 * simulator, applies backpressure, submits each admitted batch as a
 * job of @p context and aggregates latency statistics. The driver
 * must outlive JobScheduler::run() (stack-own it next to the
 * scheduler).
 */
class StreamingDriver
{
  public:
    explicit StreamingDriver(StreamingOptions options);
    ~StreamingDriver();

    /**
     * Attach the checkpoint/recovery job factories. Required before
     * start() when StreamingOptions::checkpointIntervalSec >= 0; a
     * no-op (builders unused) when recovery is disabled.
     */
    void enableRecovery(CheckpointBuilder checkpointBuilder,
                        RecoveryBuilder recoveryBuilder);

    /**
     * Precompute the arrival ticks and schedule them. Call once,
     * before JobScheduler::run(); @p onAllDone (optional) fires when
     * every admitted batch completed.
     */
    void start(JobScheduler &scheduler, JobContext &context,
               BatchBuilder builder,
               std::function<void()> onAllDone = nullptr);

    /** @return the aggregated stats (complete once the run drained). */
    const spark::StreamingMetrics &stats() const { return stats_; }

  private:
    void arrive(int index);
    void finishBatch(int index, Tick arrivalTick);
    void maybeCheckpoint();
    void onNodeLost(int node);
    void maybeFinish();

    StreamingOptions options_;
    JobScheduler *scheduler_ = nullptr;
    JobContext *context_ = nullptr;
    BatchBuilder builder_;
    CheckpointBuilder checkpointBuilder_;
    RecoveryBuilder recoveryBuilder_;
    std::function<void()> onAllDone_;
    spark::StreamingMetrics stats_;
    int pending_ = 0; //!< admitted batches not yet completed
    int arrived_ = 0; //!< arrivals seen so far
    int pendingAux_ = 0; //!< checkpoint/recovery jobs in flight
    int lastCompletedBatch_ = -1;  //!< highest batch index finished
    int lastCheckpointBatch_ = -1; //!< batch the last checkpoint covers
    bool checkpointInFlight_ = false;
    bool recoveryInFlight_ = false;
    Tick lastCheckpointTick_ = 0; //!< when the last checkpoint launched
    std::vector<double> latencies_;
    std::vector<double> services_;
    /** Liveness guard: the cluster's observer may outlive the driver. */
    std::shared_ptr<bool> aliveFlag_;
};

} // namespace doppio::sched

#endif // DOPPIO_SCHED_STREAMING_H
