#!/usr/bin/env python3
"""Lint a Prometheus text-exposition (0.0.4) file.

Checks the invariants the telemetry registry promises (DESIGN.md §15):

  - every line is a comment, blank, or `name{labels} value`;
  - every sample's family is announced by a # HELP and # TYPE pair
    before its first sample, and families are contiguous;
  - family names appear in sorted order and series within a family in
    sorted label order (the registry's deterministic iteration);
  - no (name, labels) series appears twice;
  - histogram families expose cumulative _bucket{le=...} counts ending
    in le="+Inf", plus _sum and _count, with _bucket{le="+Inf"} equal
    to _count.

Usage: promlint.py FILE [FILE...]; exits non-zero on the first
malformed file.
"""

import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[^ ]+)$"
)
LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def fail(path, lineno, message):
    print(f"{path}:{lineno}: {message}", file=sys.stderr)
    sys.exit(1)


def base_family(name, typ_by_family):
    """Map a histogram sample name back to its declared family."""
    for suffix in ("_bucket", "_sum", "_count"):
        family = name[: -len(suffix)] if name.endswith(suffix) else None
        if family and typ_by_family.get(family) == "histogram":
            return family
    return name


def lint(path):
    helped, typed = set(), {}
    seen_series = set()
    family_order = []
    histograms = {}  # family -> {"buckets": [(le, count)], ...}

    with open(path) as f:
        lines = f.read().splitlines()

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not NAME_RE.fullmatch(parts[2]):
                fail(path, lineno, f"malformed HELP line: {line!r}")
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
            ):
                fail(path, lineno, f"malformed TYPE line: {line!r}")
            if parts[2] in typed:
                fail(path, lineno, f"family {parts[2]} typed twice")
            typed[parts[2]] = parts[3]
            family_order.append(parts[2])
            continue
        if line.startswith("#"):
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            fail(path, lineno, f"malformed sample line: {line!r}")
        name, labels = m.group("name"), m.group("labels") or ""
        try:
            value = float(m.group("value"))
        except ValueError:
            fail(path, lineno, f"non-numeric value: {line!r}")
        consumed = "".join(
            LABEL_RE.sub("", labels).split(",")
        ).strip()
        if consumed:
            fail(path, lineno, f"malformed labels: {labels!r}")

        family = base_family(name, typed)
        if family not in typed or family not in helped:
            fail(path, lineno, f"sample {name} before HELP/TYPE")
        if family != family_order[-1]:
            fail(path, lineno, f"family {family} not contiguous")
        if (name, labels) in seen_series:
            fail(path, lineno, f"duplicate series {name}{{{labels}}}")
        seen_series.add((name, labels))

        if typed[family] == "histogram":
            pairs = LABEL_RE.findall(labels)
            le = dict(pairs).get("le")
            series_key = (
                family,
                ",".join(f'{k}="{v}"' for k, v in pairs if k != "le"),
            )
            h = histograms.setdefault(
                series_key, {"buckets": [], "sum": None, "count": None}
            )
            if name.endswith("_bucket"):
                if le is None:
                    fail(path, lineno, f"bucket without le: {line!r}")
                h["buckets"].append((le, value))
            elif name.endswith("_sum"):
                h["sum"] = value
            elif name.endswith("_count"):
                h["count"] = value

    if family_order != sorted(family_order):
        fail(path, 0, "families not in sorted order")

    for (family, lbls), h in histograms.items():
        where = f"{family}{{{lbls}}}"
        if h["sum"] is None or h["count"] is None:
            fail(path, 0, f"histogram {where} missing _sum/_count")
        if not h["buckets"] or h["buckets"][-1][0] != "+Inf":
            fail(path, 0, f"histogram {where} missing le=\"+Inf\"")
        counts = [c for _, c in h["buckets"]]
        if counts != sorted(counts):
            fail(path, 0, f"histogram {where} buckets not cumulative")
        if counts[-1] != h["count"]:
            fail(path, 0, f"histogram {where} +Inf != _count")

    print(
        f"{path}: OK ({len(seen_series)} series, "
        f"{len(family_order)} families)"
    )


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in sys.argv[1:]:
        lint(path)


if __name__ == "__main__":
    main()
