#!/usr/bin/env python3
"""Compare two bench JSON records (see bench/perf_core.cpp and
bench/ext_multitenant.cpp).

Usage:
  tools/bench_diff.py BASELINE.json CURRENT.json
      Print a per-scenario comparison table. Throughput units
      (events/s, flows/s, batches/s) count higher-is-better; everything
      else (wall seconds, latencies, slowdown ratios) counts
      lower-is-better. The "speedup" column is >1 when CURRENT is
      faster either way.

  tools/bench_diff.py --merge BASELINE.json CURRENT.json [-o OUT.json]
      Emit the combined baseline record committed as BENCH_<name>.json:
      both raw records plus the speedup map.

  tools/bench_diff.py --selftest
      Run the built-in unit checks (used by CI) and exit 0 on success.

Both records must come from the same bench (matching "bench" keys) and
share at least one scenario name; anything else is a usage error and
exits non-zero with a message. A successful comparison always exits 0:
the harness tracks performance, it does not gate on it (timings on
shared CI runners are too noisy to fail a build over).
"""

import argparse
import json
import os
import sys
import tempfile

HIGHER_IS_BETTER = {"events/s", "flows/s", "batches/s"}


def load(path, expect_bench=None):
    with open(path) as fh:
        record = json.load(fh)
    bench = record.get("bench")
    if not bench:
        sys.exit(f"{path}: not a bench record (no \"bench\" key)")
    if not isinstance(record.get("results"), list):
        sys.exit(f"{path}: not a bench record (no \"results\" list)")
    if expect_bench is not None and bench != expect_bench:
        sys.exit(f"{path}: bench \"{bench}\" does not match "
                 f"\"{expect_bench}\" — records from different "
                 "benches cannot be compared")
    return record


def by_name(record):
    return {r["name"]: r for r in record["results"]}


def speedups(baseline, current):
    """name -> how much faster CURRENT is (>1 = faster)."""
    base, cur = by_name(baseline), by_name(current)
    out = {}
    for name in base:
        if name not in cur:
            continue
        b, c = base[name], cur[name]
        if b["unit"] != c["unit"] or not b["value"] or not c["value"]:
            continue
        if b["unit"] in HIGHER_IS_BETTER:
            out[name] = c["value"] / b["value"]
        else:
            out[name] = b["value"] / c["value"]
    return out


def check_common(baseline, current):
    """Exit non-zero when the records share no scenario names."""
    common = set(by_name(baseline)) & set(by_name(current))
    if not common:
        sys.exit("error: the records share no common benchmark keys "
                 f"(baseline has {sorted(by_name(baseline))}, "
                 f"current has {sorted(by_name(current))}) — "
                 "nothing to compare")


def fmt(value, unit):
    if unit in HIGHER_IS_BETTER and value >= 1000:
        return f"{value:,.0f}"
    return f"{value:,.3f}"


def print_table(baseline, current):
    base, cur = by_name(baseline), by_name(current)
    ratios = speedups(baseline, current)
    rows = [("scenario", "unit", "baseline", "current", "speedup")]
    for name, b in base.items():
        c = cur.get(name)
        rows.append((
            name,
            b["unit"],
            fmt(b["value"], b["unit"]),
            fmt(c["value"], c["unit"]) if c else "-",
            f"{ratios[name]:.2f}x" if name in ratios else "-",
        ))
    for name in cur:
        if name not in base:
            rows.append((name, cur[name]["unit"], "-",
                         fmt(cur[name]["value"], cur[name]["unit"]), "-"))
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    for i, row in enumerate(rows):
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            print("-" * (sum(widths) + 2 * (len(widths) - 1)))


def selftest():
    """Unit checks for the pure helpers plus the two exit paths."""
    rec = lambda bench, results: {"bench": bench, "results": results}
    row = lambda name, unit, value: {
        "name": name, "unit": unit, "value": value}

    # Higher-is-better vs lower-is-better orientation.
    base = rec("t", [row("tput", "events/s", 100.0),
                     row("rate", "batches/s", 2.0),
                     row("wall", "s", 10.0),
                     row("slow", "x", 2.0)])
    cur = rec("t", [row("tput", "events/s", 200.0),
                    row("rate", "batches/s", 1.0),
                    row("wall", "s", 5.0),
                    row("slow", "x", 4.0)])
    got = speedups(base, cur)
    assert got == {"tput": 2.0, "rate": 0.5, "wall": 2.0,
                   "slow": 0.5}, got

    # Mismatched units and zero values are skipped, missing names too.
    base = rec("t", [row("a", "s", 1.0), row("b", "s", 0.0),
                     row("gone", "s", 1.0)])
    cur = rec("t", [row("a", "events/s", 1.0), row("b", "s", 1.0)])
    assert speedups(base, cur) == {}

    # check_common: overlapping names pass, disjoint names exit 2.
    check_common(rec("t", [row("a", "s", 1.0)]),
                 rec("t", [row("a", "s", 2.0)]))
    try:
        check_common(rec("t", [row("a", "s", 1.0)]),
                     rec("t", [row("b", "s", 2.0)]))
    except SystemExit as e:
        assert "no common benchmark keys" in str(e.code), e.code
    else:
        raise AssertionError("disjoint records did not exit")

    # load: bench mismatch and malformed records exit with a message.
    def write_tmp(obj):
        fd, path = tempfile.mkstemp(suffix=".json")
        with os.fdopen(fd, "w") as fh:
            json.dump(obj, fh)
        return path

    good = write_tmp(rec("perf_core", []))
    other = write_tmp(rec("multitenant", []))
    bad = write_tmp({"results": []})
    try:
        loaded = load(good)
        assert loaded["bench"] == "perf_core"
        for path, expect in ((other, "perf_core"), (bad, None)):
            try:
                load(path, expect_bench=expect)
            except SystemExit:
                pass
            else:
                raise AssertionError(f"{path}: load did not exit")
    finally:
        for path in (good, other, bad):
            os.unlink(path)

    print("bench_diff selftest: OK")


def main():
    parser = argparse.ArgumentParser(
        description="compare bench JSON records")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--merge", action="store_true",
                        help="emit the combined baseline record")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in unit checks")
    parser.add_argument("-o", "--output", default=None,
                        help="write merged record here (default stdout)")
    args = parser.parse_args()

    if args.selftest:
        selftest()
        return
    if not args.baseline or not args.current:
        parser.error("baseline and current records are required")

    baseline = load(args.baseline)
    current = load(args.current, expect_bench=baseline["bench"])
    check_common(baseline, current)
    if args.merge:
        merged = {
            "bench": baseline["bench"],
            "mode": current.get("mode"),
            "baseline": baseline,
            "current": current,
            "speedup": {k: round(v, 3)
                        for k, v in speedups(baseline, current).items()},
        }
        text = json.dumps(merged, indent=2) + "\n"
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text)
        else:
            sys.stdout.write(text)
    else:
        print_table(baseline, current)


if __name__ == "__main__":
    main()
