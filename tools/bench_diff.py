#!/usr/bin/env python3
"""Compare two bench JSON records (see bench/perf_core.cpp and
bench/ext_multitenant.cpp).

Usage:
  tools/bench_diff.py BASELINE.json CURRENT.json
      Print a per-scenario comparison table. Throughput units
      (events/s, flows/s, batches/s) count higher-is-better; everything
      else (wall seconds, latencies, slowdown ratios) counts
      lower-is-better. The "speedup" column is >1 when CURRENT is
      faster either way.

  tools/bench_diff.py --merge BASELINE.json CURRENT.json [-o OUT.json]
      Emit the combined baseline record committed as BENCH_<name>.json:
      both raw records plus the speedup map.

  tools/bench_diff.py --threshold 0.99 BASELINE.json CURRENT.json
      Gate: exit 3 if any common key's speedup falls below the ratio.
      --threshold-key KEY=RATIO (repeatable) overrides the floor for
      one key — the standard use is a looser gate for p99 latencies,
      which are noisier than medians even in a deterministic bench.
      --threshold-key without --threshold gates only the named keys.

  tools/bench_diff.py --selftest
      Run the built-in unit checks (used by CI) and exit 0 on success.

Both records must come from the same bench (matching "bench" keys) and
share at least one scenario name; anything else is a usage error and
exits non-zero with a message. Without --threshold* a successful
comparison always exits 0: the harness tracks performance, it does not
gate on it (timings on shared CI runners are too noisy to fail a build
over). Deterministic benches (virtual-time records like BENCH_service)
are the exception — their ratios are exact, so CI gates them with
--threshold.

Exit codes: 0 ok, 2 usage error, 3 threshold regression, 4 baseline
record missing (so CI can tell "no baseline yet" from "regression").
"""

import argparse
import json
import os
import sys
import tempfile

HIGHER_IS_BETTER = {"events/s", "flows/s", "batches/s", "queries/s"}

EXIT_REGRESSION = 3
EXIT_NO_BASELINE = 4


def load(path, expect_bench=None):
    with open(path) as fh:
        record = json.load(fh)
    bench = record.get("bench")
    if not bench:
        sys.exit(f"{path}: not a bench record (no \"bench\" key)")
    if not isinstance(record.get("results"), list):
        sys.exit(f"{path}: not a bench record (no \"results\" list)")
    if expect_bench is not None and bench != expect_bench:
        sys.exit(f"{path}: bench \"{bench}\" does not match "
                 f"\"{expect_bench}\" — records from different "
                 "benches cannot be compared")
    return record


def by_name(record):
    return {r["name"]: r for r in record["results"]}


def speedups(baseline, current):
    """name -> how much faster CURRENT is (>1 = faster)."""
    base, cur = by_name(baseline), by_name(current)
    out = {}
    for name in base:
        if name not in cur:
            continue
        b, c = base[name], cur[name]
        if b["unit"] != c["unit"] or not b["value"] or not c["value"]:
            continue
        if b["unit"] in HIGHER_IS_BETTER:
            out[name] = c["value"] / b["value"]
        else:
            out[name] = b["value"] / c["value"]
    return out


def geomean(ratios):
    """Geometric mean of a speedup map; None when it is empty.

    The arithmetic mean of ratios over-weights blowups (one 10x key
    drowns nine 0.5x regressions); the geometric mean is symmetric in
    log space, so "half as fast" and "twice as fast" cancel exactly.
    """
    if not ratios:
        return None
    product = 1.0
    for value in ratios.values():
        product *= value
    return product ** (1.0 / len(ratios))


def check_common(baseline, current):
    """Exit non-zero when the records share no scenario names."""
    common = set(by_name(baseline)) & set(by_name(current))
    if not common:
        sys.exit("error: the records share no common benchmark keys "
                 f"(baseline has {sorted(by_name(baseline))}, "
                 f"current has {sorted(by_name(current))}) — "
                 "nothing to compare")


def parse_threshold_keys(pairs):
    """["p99=0.9", ...] -> {"p99": 0.9}; exits 2 on malformed pairs."""
    out = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        try:
            if not sep or not key:
                raise ValueError
            out[key] = float(value)
        except ValueError:
            sys.exit(f"error: --threshold-key expects KEY=RATIO, got "
                     f"\"{pair}\"")
    return out


def gate(ratios, threshold, per_key):
    """[(name, ratio, floor)] for every key below its floor.

    A key's floor is its --threshold-key override if present, else the
    global --threshold (None = ungated). Keys in per_key but absent
    from ratios are ignored: a gate on a key the bench no longer
    reports should not pass silently forever, but dropping a scenario
    already changes the committed record, which review catches.
    """
    regressions = []
    for name in sorted(ratios):
        floor = per_key.get(name, threshold)
        if floor is not None and ratios[name] < floor:
            regressions.append((name, ratios[name], floor))
    return regressions


def fmt(value, unit):
    if unit in HIGHER_IS_BETTER and value >= 1000:
        return f"{value:,.0f}"
    return f"{value:,.3f}"


def print_table(baseline, current):
    base, cur = by_name(baseline), by_name(current)
    ratios = speedups(baseline, current)
    rows = [("scenario", "unit", "baseline", "current", "speedup")]
    for name, b in base.items():
        c = cur.get(name)
        rows.append((
            name,
            b["unit"],
            fmt(b["value"], b["unit"]),
            fmt(c["value"], c["unit"]) if c else "-",
            f"{ratios[name]:.2f}x" if name in ratios else "-",
        ))
    for name in cur:
        if name not in base:
            rows.append((name, cur[name]["unit"], "-",
                         fmt(cur[name]["value"], cur[name]["unit"]), "-"))
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    for i, row in enumerate(rows):
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            print("-" * (sum(widths) + 2 * (len(widths) - 1)))
    mean = geomean(ratios)
    if mean is not None:
        print(f"geomean speedup over {len(ratios)} compared "
              f"key(s): {mean:.3f}x")


def selftest():
    """Unit checks for the pure helpers plus the two exit paths."""
    rec = lambda bench, results: {"bench": bench, "results": results}
    row = lambda name, unit, value: {
        "name": name, "unit": unit, "value": value}

    # Higher-is-better vs lower-is-better orientation.
    base = rec("t", [row("tput", "events/s", 100.0),
                     row("rate", "batches/s", 2.0),
                     row("wall", "s", 10.0),
                     row("slow", "x", 2.0)])
    cur = rec("t", [row("tput", "events/s", 200.0),
                    row("rate", "batches/s", 1.0),
                    row("wall", "s", 5.0),
                    row("slow", "x", 4.0)])
    got = speedups(base, cur)
    assert got == {"tput": 2.0, "rate": 0.5, "wall": 2.0,
                   "slow": 0.5}, got

    # Mismatched units and zero values are skipped, missing names too.
    base = rec("t", [row("a", "s", 1.0), row("b", "s", 0.0),
                     row("gone", "s", 1.0)])
    cur = rec("t", [row("a", "events/s", 1.0), row("b", "s", 1.0)])
    assert speedups(base, cur) == {}

    # queries/s counts higher-is-better like the other rates.
    base = rec("t", [row("qps", "queries/s", 10.0)])
    cur = rec("t", [row("qps", "queries/s", 5.0)])
    assert speedups(base, cur) == {"qps": 0.5}

    # Geometric mean: symmetric in log space, empty map is None.
    assert geomean({}) is None
    assert geomean({"a": 4.0}) == 4.0
    assert abs(geomean({"a": 2.0, "b": 0.5}) - 1.0) < 1e-12
    assert abs(geomean({"a": 2.0, "b": 2.0, "c": 2.0}) - 2.0) < 1e-12
    # 10x blowup + two halvings: arithmetic mean would say 3.67x
    # faster; the geomean correctly reports ~1.36x.
    assert abs(geomean({"a": 10.0, "b": 0.5, "c": 0.5})
               - (10.0 * 0.5 * 0.5) ** (1.0 / 3.0)) < 1e-12

    # Threshold gate: global floor, per-key override, ungated default.
    ratios = {"p50": 1.0, "p99": 0.94, "qps": 0.985}
    assert gate(ratios, None, {}) == []
    assert gate(ratios, 0.99, {}) == [("p99", 0.94, 0.99),
                                      ("qps", 0.985, 0.99)]
    assert gate(ratios, 0.99, {"p99": 0.9, "qps": 0.9}) == []
    assert gate(ratios, None, {"p99": 0.95}) == [("p99", 0.94, 0.95)]
    assert gate(ratios, None, {"gone": 0.99}) == []

    # --threshold-key parsing: KEY=RATIO, malformed pairs exit.
    assert parse_threshold_keys(["a=0.9", "b=1.5"]) == {"a": 0.9,
                                                        "b": 1.5}
    for bad_pair in ("a", "=0.9", "a=ratio"):
        try:
            parse_threshold_keys([bad_pair])
        except SystemExit:
            pass
        else:
            raise AssertionError(f"{bad_pair!r} did not exit")

    # check_common: overlapping names pass, disjoint names exit 2.
    check_common(rec("t", [row("a", "s", 1.0)]),
                 rec("t", [row("a", "s", 2.0)]))
    try:
        check_common(rec("t", [row("a", "s", 1.0)]),
                     rec("t", [row("b", "s", 2.0)]))
    except SystemExit as e:
        assert "no common benchmark keys" in str(e.code), e.code
    else:
        raise AssertionError("disjoint records did not exit")

    # load: bench mismatch and malformed records exit with a message.
    def write_tmp(obj):
        fd, path = tempfile.mkstemp(suffix=".json")
        with os.fdopen(fd, "w") as fh:
            json.dump(obj, fh)
        return path

    good = write_tmp(rec("perf_core", []))
    other = write_tmp(rec("multitenant", []))
    bad = write_tmp({"results": []})
    try:
        loaded = load(good)
        assert loaded["bench"] == "perf_core"
        for path, expect in ((other, "perf_core"), (bad, None)):
            try:
                load(path, expect_bench=expect)
            except SystemExit:
                pass
            else:
                raise AssertionError(f"{path}: load did not exit")
    finally:
        for path in (good, other, bad):
            os.unlink(path)

    print("bench_diff selftest: OK")


def main():
    parser = argparse.ArgumentParser(
        description="compare bench JSON records")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--merge", action="store_true",
                        help="emit the combined baseline record")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in unit checks")
    parser.add_argument("-o", "--output", default=None,
                        help="write merged record here (default stdout)")
    parser.add_argument("--threshold", type=float, default=None,
                        help="exit 3 if any common key's speedup falls "
                             "below this ratio")
    parser.add_argument("--threshold-key", action="append", default=[],
                        metavar="KEY=RATIO",
                        help="per-key floor overriding --threshold "
                             "(repeatable)")
    args = parser.parse_args()

    if args.selftest:
        selftest()
        return
    if not args.baseline or not args.current:
        parser.error("baseline and current records are required")
    per_key = parse_threshold_keys(args.threshold_key)

    if not os.path.exists(args.baseline):
        print(f"{args.baseline}: baseline record missing",
              file=sys.stderr)
        sys.exit(EXIT_NO_BASELINE)
    baseline = load(args.baseline)
    current = load(args.current, expect_bench=baseline["bench"])
    check_common(baseline, current)
    if args.merge:
        merged = {
            "bench": baseline["bench"],
            "mode": current.get("mode"),
            "baseline": baseline,
            "current": current,
            "speedup": {k: round(v, 3)
                        for k, v in speedups(baseline, current).items()},
        }
        text = json.dumps(merged, indent=2) + "\n"
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text)
        else:
            sys.stdout.write(text)
    else:
        print_table(baseline, current)

    if args.threshold is not None or per_key:
        regressions = gate(speedups(baseline, current),
                           args.threshold, per_key)
        for name, ratio, floor in regressions:
            print(f"REGRESSION: {name} speedup {ratio:.3f} < floor "
                  f"{floor:.3f}", file=sys.stderr)
        if regressions:
            sys.exit(EXIT_REGRESSION)
        print("threshold gate: OK")


if __name__ == "__main__":
    main()
