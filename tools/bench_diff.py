#!/usr/bin/env python3
"""Compare two perf_core JSON records (see bench/perf_core.cpp).

Usage:
  tools/bench_diff.py BASELINE.json CURRENT.json
      Print a per-scenario comparison table. Throughput units
      (events/s, flows/s) count higher-is-better; wall-clock units
      (s) count lower-is-better. The "speedup" column is >1 when
      CURRENT is faster either way.

  tools/bench_diff.py --merge BASELINE.json CURRENT.json [-o OUT.json]
      Emit the combined baseline record committed as
      BENCH_perf_core.json: both raw records plus the speedup map.

Exit status is always 0: the harness tracks performance, it does not
gate on it (timings on shared CI runners are too noisy to fail a
build over).
"""

import argparse
import json
import sys

HIGHER_IS_BETTER = {"events/s", "flows/s"}


def load(path):
    with open(path) as fh:
        record = json.load(fh)
    if record.get("bench") != "perf_core":
        sys.exit(f"{path}: not a perf_core record")
    return record


def by_name(record):
    return {r["name"]: r for r in record["results"]}


def speedups(baseline, current):
    """name -> how much faster CURRENT is (>1 = faster)."""
    base, cur = by_name(baseline), by_name(current)
    out = {}
    for name in base:
        if name not in cur:
            continue
        b, c = base[name], cur[name]
        if b["unit"] != c["unit"] or not b["value"] or not c["value"]:
            continue
        if b["unit"] in HIGHER_IS_BETTER:
            out[name] = c["value"] / b["value"]
        else:
            out[name] = b["value"] / c["value"]
    return out


def fmt(value, unit):
    return f"{value:,.3f}" if unit == "s" else f"{value:,.0f}"


def print_table(baseline, current):
    base, cur = by_name(baseline), by_name(current)
    ratios = speedups(baseline, current)
    rows = [("scenario", "unit", "baseline", "current", "speedup")]
    for name, b in base.items():
        c = cur.get(name)
        rows.append((
            name,
            b["unit"],
            fmt(b["value"], b["unit"]),
            fmt(c["value"], c["unit"]) if c else "-",
            f"{ratios[name]:.2f}x" if name in ratios else "-",
        ))
    for name in cur:
        if name not in base:
            rows.append((name, cur[name]["unit"], "-",
                         fmt(cur[name]["value"], cur[name]["unit"]), "-"))
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    for i, row in enumerate(rows):
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            print("-" * (sum(widths) + 2 * (len(widths) - 1)))


def main():
    parser = argparse.ArgumentParser(
        description="compare perf_core JSON records")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--merge", action="store_true",
                        help="emit the combined baseline record")
    parser.add_argument("-o", "--output", default=None,
                        help="write merged record here (default stdout)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    if args.merge:
        merged = {
            "bench": "perf_core",
            "mode": current.get("mode"),
            "baseline": baseline,
            "current": current,
            "speedup": {k: round(v, 3)
                        for k, v in speedups(baseline, current).items()},
        }
        text = json.dumps(merged, indent=2) + "\n"
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text)
        else:
            sys.stdout.write(text)
    else:
        print_table(baseline, current)


if __name__ == "__main__":
    main()
