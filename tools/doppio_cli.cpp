/**
 * @file
 * doppio — command-line front end to the library.
 *
 *   doppio list
 *       List the bundled workloads.
 *   doppio run <workload> [--nodes N] [--cores P] [--hdfs T]
 *              [--local T] [--local-disks K] [--speculate]
 *              [--trace FILE] [--perfetto FILE] [--json FILE]
 *              [--no-page-cache] [--cache-capacity MIB]
 *              [--cache-dirty-ratio F] [--cache-readahead KIB]
 *              [--fault-spec SPEC] [--task-fail-rate F]
 *              [--kill-node ID@T] [--pool NAME] [--verbose]
 *       Simulate a workload and print per-stage metrics. The OS page
 *       cache is modeled unless --no-page-cache is given. Fault flags
 *       arm the fault injector; without them the run is bit-for-bit
 *       identical to a build without the fault subsystem. --perfetto
 *       records a full telemetry timeline (Chrome trace-event JSON,
 *       opens in Perfetto) and prints the per-stage phase-attribution
 *       report; an untraced run's outputs are byte-identical to a
 *       traced run's. --pool routes the workload through the
 *       multi-tenant scheduler as a single tenant of the named pool.
 *   doppio run --jobs-spec FILE [cluster/memory/fault options]
 *       Multi-tenant run: FILE declares scheduler pools and tenant
 *       lines (see src/sched/jobs_spec.h for the grammar). All tenants
 *       share one cluster, one page cache and one fault schedule;
 *       --json emits the combined multi-tenant document and --perfetto
 *       gets one timeline lane per job.
 *   doppio profile <workload> [--nodes N] [--cores P] [--hdfs T]
 *              [--local T]
 *       Fit the I/O-aware model (extended five-run methodology) and
 *       print the model report for the given platform.
 *   doppio fio [--disk T]
 *       Print the effective-bandwidth sweep for a device.
 *   doppio optimize [--workers N]
 *       Profile GATK4 on simulated cloud workers and print the
 *       cheapest configurations plus the cost/runtime Pareto front.
 *   doppio serve --script FILE | --port N
 *       What-if planning service (DESIGN.md §14): answer
 *       line-delimited JSON plan queries either by deterministically
 *       replaying a script file (one request per line, '#' comments)
 *       or over TCP on 127.0.0.1:N. --stats-json dumps the operator
 *       counters (shed/degraded/retry/partition-timeout telemetry)
 *       after the script or serve loop finishes; --metrics-out writes
 *       the doppio_service_* Prometheus exposition (the same text the
 *       {"cmd":"metrics"} control query returns inline), and
 *       --postmortem FILE attaches a flight recorder that dumps the
 *       recent event rings to FILE when the circuit breaker opens.
 *
 * Any run variant accepts --metrics-out FILE: the run's counters,
 * gauges and latency histograms in Prometheus text exposition format
 * (DESIGN.md §15). Metrics observe only — a run with --metrics-out is
 * byte-identical (tables, --json, exit code) to one without.
 *
 * Disk types T: hdd, ssd, nvme. Unknown flags and out-of-range values
 * abort with a non-zero exit instead of being silently ignored.
 */

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cloud/advisor.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "faults/fault_spec.h"
#include "model/profiler.h"
#include "model/report.h"
#include "sched/jobs_spec.h"
#include "service/server.h"
#include "spark/metrics_json.h"
#include "spark/task_trace.h"
#include "storage/fio.h"
#include "telemetry/bottleneck.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"
#include "trace/phase_report.h"
#include "trace/trace_collector.h"
#include "workloads/gatk4.h"
#include "workloads/multi_tenant.h"
#include "workloads/registry.h"

using namespace doppio;

namespace {

/**
 * Strict flag parser: --name value and boolean --name. Every token a
 * command looks at is marked consumed; rejectUnknown() then fails fast
 * on anything left over (typos, flags of another command), and numeric
 * values must parse completely and fall inside the caller's range.
 */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i)
            tokens_.emplace_back(argv[i]);
        consumed_.assign(tokens_.size(), false);
    }

    /** Last occurrence wins; fatal() when the value is missing. */
    std::string
    value(const std::string &flag, const std::string &fallback) const
    {
        std::string result = fallback;
        for (std::size_t i = 0; i < tokens_.size(); ++i) {
            if (tokens_[i] != flag)
                continue;
            if (i + 1 >= tokens_.size())
                fatal("flag %s expects a value", flag.c_str());
            consumed_[i] = consumed_[i + 1] = true;
            result = tokens_[i + 1];
        }
        return result;
    }

    int
    intValue(const std::string &flag, int fallback, int lo = INT_MIN,
             int hi = INT_MAX) const
    {
        const std::string v = value(flag, "");
        if (v.empty())
            return fallback;
        char *end = nullptr;
        errno = 0;
        const long parsed = std::strtol(v.c_str(), &end, 10);
        if (errno != 0 || end == v.c_str() || *end != '\0')
            fatal("flag %s: '%s' is not an integer", flag.c_str(),
                  v.c_str());
        if (parsed < lo || parsed > hi)
            fatal("flag %s: %ld out of range [%d, %d]", flag.c_str(),
                  parsed, lo, hi);
        return static_cast<int>(parsed);
    }

    double
    doubleValue(const std::string &flag, double fallback, double lo,
                double hi) const
    {
        const std::string v = value(flag, "");
        if (v.empty())
            return fallback;
        char *end = nullptr;
        errno = 0;
        const double parsed = std::strtod(v.c_str(), &end);
        if (errno != 0 || end == v.c_str() || *end != '\0')
            fatal("flag %s: '%s' is not a number", flag.c_str(),
                  v.c_str());
        if (parsed < lo || parsed > hi)
            fatal("flag %s: %g out of range [%g, %g]", flag.c_str(),
                  parsed, lo, hi);
        return parsed;
    }

    bool
    has(const std::string &flag) const
    {
        bool found = false;
        for (std::size_t i = 0; i < tokens_.size(); ++i) {
            if (tokens_[i] == flag) {
                consumed_[i] = true;
                found = true;
            }
        }
        return found;
    }

    /** fatal() listing every token no flag query consumed. */
    void
    rejectUnknown(const std::string &command) const
    {
        std::string unknown;
        for (std::size_t i = 0; i < tokens_.size(); ++i) {
            if (consumed_[i])
                continue;
            if (!unknown.empty())
                unknown += ' ';
            unknown += tokens_[i];
        }
        if (!unknown.empty())
            fatal("%s: unknown argument(s): %s", command.c_str(),
                  unknown.c_str());
    }

  private:
    std::vector<std::string> tokens_;
    mutable std::vector<bool> consumed_;
};

storage::DiskParams
diskByName(const std::string &name)
{
    if (name == "hdd")
        return storage::makeHddParams();
    if (name == "ssd")
        return storage::makeSsdParams();
    if (name == "nvme")
        return storage::makeNvmeParams();
    fatal("unknown disk type '%s' (hdd|ssd|nvme)", name.c_str());
}

cluster::ClusterConfig
clusterFromArgs(const Args &args)
{
    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    config.numSlaves =
        args.intValue("--nodes", config.numSlaves, 1, 100000);
    config.node.hdfsDisk = diskByName(args.value("--hdfs", "ssd"));
    config.node.localDisk = diskByName(args.value("--local", "ssd"));
    config.node.localDiskCount =
        args.intValue("--local-disks", 1, 1, 64);
    // The CLI models the OS page cache by default (real clusters run
    // with it warm); --no-page-cache reproduces the library default,
    // i.e. the paper's drop_caches profiling conditions.
    config.node.pageCache.enabled = !args.has("--no-page-cache");
    config.node.pageCache.capacity =
        static_cast<Bytes>(
            args.intValue("--cache-capacity", 0, 0, INT_MAX)) *
        kMiB;
    config.node.pageCache.dirtyRatio =
        args.doubleValue("--cache-dirty-ratio",
                         config.node.pageCache.dirtyRatio, 0.01, 1.0);
    config.node.pageCache.dirtyBackgroundRatio =
        std::min(config.node.pageCache.dirtyBackgroundRatio,
                 config.node.pageCache.dirtyRatio / 2.0);
    config.node.pageCache.readAhead =
        static_cast<Bytes>(args.intValue(
            "--cache-readahead",
            static_cast<int>(config.node.pageCache.readAhead / kKiB), 0,
            INT_MAX)) *
        kKiB;
    const std::string executor_memory =
        args.value("--executor-memory", "");
    if (!executor_memory.empty()) {
        config.node.executorMemory = parseBytes(executor_memory);
        if (config.node.executorMemory == 0)
            fatal("--executor-memory must be positive");
        if (config.node.executorMemory > config.node.ram)
            fatal("--executor-memory (%s) exceeds node RAM (%s)",
                  formatBytes(config.node.executorMemory).c_str(),
                  formatBytes(config.node.ram).c_str());
    }
    return config;
}

/**
 * Assemble the run's FaultSpec from --fault-spec (a file path if one
 * exists, inline statements otherwise) plus the convenience shorthands
 * --task-fail-rate and --kill-node ID@T.
 */
faults::FaultSpec
faultsFromArgs(const Args &args)
{
    faults::FaultSpec spec;
    const std::string specArg = args.value("--fault-spec", "");
    if (!specArg.empty()) {
        const std::ifstream probe(specArg);
        spec = probe.good()
                   ? faults::FaultSpec::parseFile(specArg)
                   : faults::FaultSpec::parse(specArg, "--fault-spec");
    }
    spec.taskFailureRate = args.doubleValue(
        "--task-fail-rate", spec.taskFailureRate, 0.0, 0.9);
    const std::string kill = args.value("--kill-node", "");
    if (!kill.empty()) {
        const faults::FaultSpec parsed =
            faults::FaultSpec::parse("kill " + kill, "--kill-node");
        for (const faults::NodeEvent &event : parsed.schedule.events())
            spec.schedule.add(event);
    }
    spec.validate();
    return spec;
}

int
cmdList(const Args &args)
{
    setVerbose(args.has("--verbose"));
    args.rejectUnknown("list");
    for (const std::string &name : workloads::registeredWorkloads())
        std::cout << name << "\n";
    return 0;
}

spark::SparkConf
sparkConfFromArgs(const Args &args)
{
    spark::SparkConf conf;
    conf.executorCores = args.intValue("--cores", 36, 1, 4096);
    conf.speculation = args.has("--speculate");
    // The CLI runs the Spark 1.6 unified memory manager by default;
    // --legacy-memory reproduces the seed's static all-or-nothing
    // placement bit-for-bit.
    conf.unifiedMemory = !args.has("--legacy-memory");
    conf.memoryFraction = args.doubleValue(
        "--memory-fraction", conf.memoryFraction, 0.05, 0.95);
    conf.memoryStorageFraction = args.doubleValue(
        "--storage-fraction", conf.memoryStorageFraction, 0.0, 1.0);
    if (!conf.unifiedMemory && (args.has("--memory-fraction") ||
                                args.has("--storage-fraction")))
        fatal("--memory-fraction/--storage-fraction configure the "
              "unified memory manager and conflict with "
              "--legacy-memory");
    return conf;
}

void
printFaultsSummary(const spark::FaultMetrics &f)
{
    std::cout << "\nfaults: " << f.taskFailures << " task crash(es), "
              << f.taskRetries << " retry(ies), " << f.lostAttempts
              << " attempt(s) lost to node death, " << f.fetchFailures
              << " fetch failure(s), " << f.stageReattempts
              << " stage reattempt(s), " << f.hdfsFailovers
              << " HDFS failover(s)\n"
              << "        wasted "
              << formatDuration(secondsToTicks(f.wastedTaskSeconds))
              << " of task work, "
              << formatDuration(secondsToTicks(f.recoverySeconds))
              << " recovering, re-replicated "
              << formatBytes(f.reReplicatedBytes) << ", lost "
              << formatBytes(f.lostDirtyBytes)
              << " of dirty page cache\n"
              << "        " << f.corruptReads
              << " corrupt read(s), quarantined "
              << formatBytes(f.quarantinedBytes) << ", "
              << f.partitionTimeouts
              << " partition timeout(s)\n";
}

void
printMemorySummary(const spark::MemoryMetrics &m)
{
    std::cout << "\nmemory: pool " << formatBytes(m.poolBytes)
              << ", peak storage " << formatBytes(m.peakStorageBytes)
              << ", peak execution "
              << formatBytes(m.peakExecutionBytes) << "\n"
              << "        " << m.evictedBlocks << " eviction(s) ("
              << formatBytes(m.evictedToDiskBytes) << " to disk), "
              << m.droppedBlocks << " block(s) dropped, "
              << m.recomputedPartitions
              << " partition(s) recomputed\n"
              << "        " << m.spills << " spill(s) in "
              << m.spillPasses << " merge pass(es), "
              << formatBytes(m.spilledBytes) << " spilled, "
              << m.oomKills << " OOM kill(s)\n";
}

/** Write @p registry's Prometheus exposition to @p path. */
void
writeMetricsFile(const telemetry::Registry &registry,
                 const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open metrics file '%s'", path.c_str());
    registry.writePrometheus(out);
    std::cout << "wrote " << registry.seriesCount()
              << " metric series (" << registry.familyCount()
              << " families) to " << path << "\n";
}

/**
 * Stream the traced run's per-stage phase attribution through the
 * online bottleneck detector: alerts print to the console, and the
 * detector's stage-share/alert series land in @p registry next to the
 * run's other metrics.
 */
void
publishBottlenecks(telemetry::Registry &registry,
                   const trace::TraceCollector &collector,
                   const cluster::ClusterConfig &config,
                   const spark::SparkConf &conf)
{
    const int core_tracks =
        config.numSlaves *
        std::min(conf.executorCores, config.node.cores);
    const trace::PhaseReport report =
        trace::PhaseReport::build(collector, core_tracks);
    telemetry::BottleneckDetector detector;
    for (const trace::PhaseBreakdown &stage : report.stages)
        for (const telemetry::BottleneckAlert &alert :
             detector.observeStage(stage))
            std::cout << "bottleneck: " << alert.toString() << "\n";
    detector.publish(registry);
}

/** Console summary + optional phase report for a recorded timeline. */
void
printTraceSummary(const trace::TraceCollector &collector,
                  const cluster::ClusterConfig &config,
                  const spark::SparkConf &conf)
{
    // Console-only summary: the metrics JSON stays byte-identical
    // with and without tracing.
    std::cout << "\ntrace: " << collector.size() << " event(s)";
    const char *sep = " — ";
    for (const auto &[category, count] : collector.countsByCategory()) {
        std::cout << sep << category << " " << count;
        sep = ", ";
    }
    std::cout << "\n\n";
    const int core_tracks =
        config.numSlaves *
        std::min(conf.executorCores, config.node.cores);
    const trace::PhaseReport report =
        trace::PhaseReport::build(collector, core_tracks);
    report.write(std::cout);
}

/**
 * Shared back half of `run --jobs-spec` and `run <workload> --pool`:
 * run @p spec through the multi-tenant scheduler and print/emit the
 * combined result.
 */
int
runMultiSpec(const sched::MultiJobSpec &spec, const Args &args)
{
    const cluster::ClusterConfig config = clusterFromArgs(args);
    const spark::SparkConf conf = sparkConfFromArgs(args);
    if (conf.speculation)
        fatal("run: --speculate is not supported by the multi-tenant "
              "scheduler");

    trace::TraceCollector collector;
    telemetry::Registry registry;
    const std::string json_path = args.value("--json", "");
    const std::string perfetto_path = args.value("--perfetto", "");
    const std::string metrics_path = args.value("--metrics-out", "");
    const faults::FaultSpec faultSpec = faultsFromArgs(args);
    args.rejectUnknown("run");

    const workloads::MultiTenantResult result =
        workloads::runMultiTenant(
            spec, config, conf, &faultSpec,
            perfetto_path.empty() ? nullptr : &collector,
            metrics_path.empty() ? nullptr : &registry);

    if (!perfetto_path.empty()) {
        std::ofstream out(perfetto_path);
        if (!out)
            fatal("cannot open perfetto file '%s'",
                  perfetto_path.c_str());
        collector.writeChromeJson(out);
        std::cout << "wrote " << collector.size()
                  << " trace events to " << perfetto_path
                  << " (open at https://ui.perfetto.dev)\n";
    }
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            fatal("cannot open json file '%s'", json_path.c_str());
        workloads::writeMultiTenantJson(out, result);
        out << "\n";
    }

    TablePrinter table("multi-tenant on " +
                       std::to_string(config.numSlaves) +
                       " slaves, P=" +
                       std::to_string(conf.executorCores));
    table.setHeader(
        {"tenant", "pool", "jobs", "submitted", "finished",
         "core-time"});
    for (const sched::TenantSummary &tenant : result.tenancy.tenants) {
        table.addRow(
            {tenant.name, tenant.pool, std::to_string(tenant.jobs),
             formatDuration(secondsToTicks(tenant.submitSec)),
             formatDuration(secondsToTicks(tenant.doneSec)),
             formatDuration(secondsToTicks(tenant.coreSeconds))});
    }
    table.print(std::cout);

    TablePrinter pools("Scheduler pools");
    pools.setHeader({"pool", "mode", "weight", "min share",
                     "core-time"});
    for (const sched::PoolSummary &pool : result.tenancy.pools) {
        pools.addRow(
            {pool.name, pool.fair ? "fair" : "fifo",
             TablePrinter::num(pool.weight, 1),
             std::to_string(pool.minShare),
             formatDuration(secondsToTicks(pool.coreSeconds))});
    }
    pools.print(std::cout);
    std::cout << "total: "
              << formatDuration(secondsToTicks(result.seconds))
              << "\n";

    for (const spark::AppMetrics &tenant : result.tenants) {
        if (!tenant.streamingPresent)
            continue;
        const spark::StreamingMetrics &s = tenant.streaming;
        std::cout << "stream " << tenant.name << ": " << s.processed
                  << "/" << s.arrivals << " batch(es), " << s.dropped
                  << " dropped, p50 "
                  << formatDuration(secondsToTicks(s.p50LatencySec))
                  << ", p99 "
                  << formatDuration(secondsToTicks(s.p99LatencySec))
                  << (s.stable() ? ", stable" : ", UNSTABLE") << "\n";
    }

    if (result.pageCachePresent) {
        std::cout << "\n";
        Bytes capacity = config.node.pageCache.capacity;
        if (capacity == 0 &&
            config.node.ram > config.node.executorMemory)
            capacity = config.node.ram - config.node.executorMemory;
        model::writePageCacheReport(std::cout, result.pageCache,
                                    capacity);
    }
    if (result.faultsPresent)
        printFaultsSummary(result.faults);
    if (result.memoryPresent)
        printMemorySummary(result.memory);
    if (!perfetto_path.empty())
        printTraceSummary(collector, config, conf);
    if (!metrics_path.empty()) {
        if (!perfetto_path.empty())
            publishBottlenecks(registry, collector, config, conf);
        writeMetricsFile(registry, metrics_path);
    }
    return 0;
}

/** `doppio run --jobs-spec FILE ...` (no workload positional). */
int
cmdRunMulti(const Args &args)
{
    setVerbose(args.has("--verbose"));
    const std::string spec_path = args.value("--jobs-spec", "");
    if (spec_path.empty())
        fatal("run: expected a workload name or --jobs-spec FILE");
    return runMultiSpec(sched::MultiJobSpec::fromFile(spec_path),
                        args);
}

int
cmdRun(const std::string &name, const Args &args)
{
    setVerbose(args.has("--verbose"));
    const std::string pool = args.value("--pool", "");
    if (!pool.empty()) {
        // Single workload through the multi-tenant scheduler: one
        // tenant in the named pool (fair unless it is the built-in
        // FIFO default pool).
        sched::MultiJobSpec spec;
        if (pool != "default") {
            sched::PoolConfig poolConfig;
            poolConfig.name = pool;
            poolConfig.fair = true;
            spec.pools.push_back(poolConfig);
        }
        sched::TenantSpec tenant;
        tenant.pool = pool;
        if (name.rfind("streaming-", 0) == 0) {
            tenant.kind = sched::TenantSpec::Kind::Stream;
            tenant.workload = name.substr(std::strlen("streaming-"));
        } else {
            tenant.workload = name;
        }
        spec.tenants.push_back(tenant);
        return runMultiSpec(spec, args);
    }
    const auto workload = workloads::makeWorkload(name);
    const cluster::ClusterConfig config = clusterFromArgs(args);
    const spark::SparkConf conf = sparkConfFromArgs(args);

    spark::TaskTrace trace;
    trace::TraceCollector collector;
    telemetry::Registry registry;
    const std::string trace_path = args.value("--trace", "");
    const std::string json_path = args.value("--json", "");
    const std::string perfetto_path = args.value("--perfetto", "");
    const std::string metrics_path = args.value("--metrics-out", "");
    const faults::FaultSpec faultSpec = faultsFromArgs(args);
    args.rejectUnknown("run");

    const spark::AppMetrics metrics =
        workload->run(config, conf, trace_path.empty() ? nullptr : &trace,
                      &faultSpec,
                      perfetto_path.empty() ? nullptr : &collector,
                      metrics_path.empty() ? nullptr : &registry);
    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out)
            fatal("cannot open trace file '%s'", trace_path.c_str());
        trace.writeCsv(out);
        std::cout << "wrote " << trace.size() << " task records to "
                  << trace_path << "\n";
    }
    if (!perfetto_path.empty()) {
        std::ofstream out(perfetto_path);
        if (!out)
            fatal("cannot open perfetto file '%s'",
                  perfetto_path.c_str());
        collector.writeChromeJson(out);
        std::cout << "wrote " << collector.size()
                  << " trace events to " << perfetto_path
                  << " (open at https://ui.perfetto.dev)\n";
    }
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            fatal("cannot open json file '%s'", json_path.c_str());
        spark::writeMetricsJson(out, metrics);
        out << "\n";
    }

    TablePrinter table(workload->name() + " on " +
                       std::to_string(config.numSlaves) + " slaves, P=" +
                       std::to_string(conf.executorCores));
    table.setHeader({"stage", "tasks", "duration", "read", "write"});
    for (const spark::StageMetrics *stage : metrics.allStages()) {
        table.addRow(
            {stage->name, std::to_string(stage->numTasks),
             formatDuration(stage->endTick - stage->startTick),
             formatBytes(stage->totalBytes(storage::IoKind::Read)),
             formatBytes(stage->totalBytes(storage::IoKind::Write))});
    }
    table.print(std::cout);
    std::cout << "total: "
              << formatDuration(secondsToTicks(metrics.seconds()))
              << "\n";
    if (metrics.pageCachePresent) {
        std::cout << "\n";
        Bytes capacity = config.node.pageCache.capacity;
        if (capacity == 0 &&
            config.node.ram > config.node.executorMemory)
            capacity = config.node.ram - config.node.executorMemory;
        model::writePageCacheReport(std::cout, metrics.pageCache,
                                    capacity);
    }
    if (metrics.faultsPresent)
        printFaultsSummary(metrics.faults);
    if (metrics.memoryPresent)
        printMemorySummary(metrics.memory);
    if (!perfetto_path.empty())
        printTraceSummary(collector, config, conf);
    if (!metrics_path.empty()) {
        if (!perfetto_path.empty())
            publishBottlenecks(registry, collector, config, conf);
        writeMetricsFile(registry, metrics_path);
    }
    return 0;
}

int
cmdProfile(const std::string &name, const Args &args)
{
    setVerbose(args.has("--verbose"));
    const auto workload = workloads::makeWorkload(name);
    const cluster::ClusterConfig config = clusterFromArgs(args);
    model::Profiler::Options options;
    options.fitGc = true;
    options.sampleNodes = config.numSlaves;
    options.gcNodes = config.numSlaves + 1;
    const int cores = args.intValue("--cores", 36, 1, 4096);
    args.rejectUnknown("profile");
    model::Profiler profiler(workload->runner(), config,
                             spark::SparkConf{}, options);
    const model::AppModel app = profiler.fit(workload->name());

    model::ReportOptions report;
    report.numNodes = config.numSlaves;
    report.cores = cores;
    model::writeReport(std::cout, app,
                       model::PlatformProfile::fromNode(config.node),
                       report);
    return 0;
}

int
cmdFio(const Args &args)
{
    setVerbose(args.has("--verbose"));
    const storage::DiskParams params =
        diskByName(args.value("--disk", "hdd"));
    args.rejectUnknown("fio");
    const storage::FioProfiler profiler(params);
    TablePrinter table("Effective bandwidth, " + params.model);
    table.setHeader({"request size", "read", "write", "read IOPS"});
    for (Bytes rs : storage::FioProfiler::defaultSweepSizes()) {
        const auto read = profiler.measure(storage::IoKind::Read, rs);
        const auto write = profiler.measure(storage::IoKind::Write, rs);
        table.addRow({formatBytes(rs), formatBandwidth(read.bandwidth),
                      formatBandwidth(write.bandwidth),
                      TablePrinter::num(read.iops, 0)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdOptimize(const Args &args)
{
    setVerbose(args.has("--verbose"));
    const workloads::Gatk4 gatk4;
    const int workers = args.intValue("--workers", 10, 1, 100000);
    // 0 = one thread per hardware core. Any value yields byte-identical
    // output; --jobs 1 evaluates the grid inline (serial behaviour).
    const int jobs = args.intValue("--jobs", 0, 0, 1024);
    // Constrained modes (DESIGN.md §16): cheapest under a completion
    // deadline, or fastest under a dollar budget. At most one.
    const double deadlineMin =
        args.doubleValue("--deadline", 0.0, 0.0, 1e9);
    const double budgetUsd = args.doubleValue("--budget", 0.0, 0.0, 1e9);
    args.rejectUnknown("optimize");
    if (deadlineMin > 0.0 && budgetUsd > 0.0)
        fatal("optimize: give at most one of --deadline / --budget");
    constexpr Bytes kGB = 1000ULL * 1000 * 1000;

    cluster::ClusterConfig config;
    config.numSlaves = workers;
    config.node.cores = 16;
    config.node.hdfsDisk = cloud::makeCloudDiskParams(
        cloud::CloudDiskType::Standard, 1000 * kGB);
    config.node.localDisk = cloud::makeCloudDiskParams(
        cloud::CloudDiskType::Standard, 2000 * kGB);

    model::Profiler::Options options;
    options.fitGc = true;
    options.highCores = 16;
    options.ssd =
        cloud::makeCloudDiskParams(cloud::CloudDiskType::Ssd,
                                   500 * kGB);
    options.hdd = cloud::makeCloudDiskParams(
        cloud::CloudDiskType::Standard, 500 * kGB);
    model::Profiler profiler(gatk4.runner(), config,
                             spark::SparkConf{}, options);
    const model::AppModel app = profiler.fit("GATK4");

    cloud::CostOptimizer::Options search;
    search.workers = workers;
    search.jobs = jobs;
    const cloud::CostOptimizer optimizer(app, cloud::GcpPricing{},
                                         search);
    const cloud::Advisor advisor(optimizer);

    if (deadlineMin > 0.0 || budgetUsd > 0.0) {
        const cloud::Constraint constraint =
            deadlineMin > 0.0
                ? cloud::Constraint::cheapestUnderDeadline(deadlineMin *
                                                           60.0)
                : cloud::Constraint::fastestUnderBudget(budgetUsd);
        const cloud::ConstrainedResult result =
            optimizer.optimizeConstrained(constraint);
        if (deadlineMin > 0.0)
            std::cout << "constraint: runtime <= "
                      << TablePrinter::num(deadlineMin, 1) << " min\n";
        else
            std::cout << "constraint: cost <= $"
                      << TablePrinter::num(budgetUsd, 2) << "\n";
        if (!result.feasible) {
            std::cout << "no feasible configuration in the grid\n";
        } else {
            std::cout << (deadlineMin > 0.0 ? "cheapest" : "fastest")
                      << ": " << result.best.config.describe() << "  $"
                      << TablePrinter::num(result.best.cost, 2) << " in "
                      << TablePrinter::num(result.best.seconds / 60.0, 1)
                      << " min\n";
        }
        const cloud::SearchStats &s = result.stats;
        std::cout << "search: " << s.cellsTotal << " cells, "
                  << s.cellsEvaluated << " evaluated, " << s.cellsPruned
                  << " pruned, " << s.memoHits << " memo hits, "
                  << s.exhaustiveFallbacks << " fallbacks\n";
        return result.feasible ? 0 : 1;
    }

    const cloud::Evaluation best = optimizer.optimize();
    std::cout << "cheapest: " << best.config.describe() << "  $"
              << TablePrinter::num(best.cost, 2) << " in "
              << TablePrinter::num(best.seconds / 60.0, 1) << " min\n\n";

    TablePrinter table("Runtime/cost Pareto frontier");
    table.setHeader({"configuration", "runtime (min)", "cost ($)"});
    for (const cloud::Evaluation &eval : advisor.paretoFrontier()) {
        table.addRow({eval.config.describe(),
                      TablePrinter::num(eval.seconds / 60.0, 1),
                      TablePrinter::num(eval.cost, 2)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdServe(const Args &args)
{
    setVerbose(args.has("--verbose"));

    service::ServiceConfig config;
    config.planner.sampleNodes =
        args.intValue("--sample-nodes", 3, 1, 64);
    config.planner.defaultWorkers = args.intValue("--workers", 4, 1, 1000);
    config.planner.msPerSimSecond =
        args.doubleValue("--ms-per-sim-sec", 0.02, 1e-6, 1e6);
    config.planner.cellCostMs =
        args.doubleValue("--cell-cost-ms", 5.0, 1e-6, 1e6);
    config.planner.maxRetries = args.intValue("--max-retries", 3, 0, 100);
    config.planner.backoffBaseMs =
        args.doubleValue("--backoff-ms", 50.0, 0.0, 1e6);
    config.planner.evalFailRate =
        args.doubleValue("--eval-fail-rate", 0.0, 0.0, 0.99);
    config.planner.seed = static_cast<std::uint64_t>(
        args.intValue("--service-seed", 42, 0, INT_MAX));
    config.planner.validate = !args.has("--no-validate");
    config.planner.faults = faultsFromArgs(args);
    config.planner.modelStorePath = args.value("--model-store", "");
    config.planner.sweepJobs = args.intValue("--sweep-jobs", 1, 0, 1024);
    config.batchMax = args.intValue("--batch-max", 8, 1, 1024);
    config.breaker.latencyThresholdMs =
        args.doubleValue("--breaker-ms", 15000.0, 1.0, 1e9);
    config.breaker.depthThreshold =
        static_cast<std::size_t>(args.intValue("--breaker-depth", 64, 1,
                                               100000));
    config.breaker.cooldownMs =
        args.doubleValue("--breaker-cooldown-ms", 2000.0, 0.0, 1e9);
    config.queueCapacity = static_cast<std::size_t>(
        args.intValue("--queue-cap", 16, 1, 100000));
    config.dropOldest = !args.has("--reject-new");
    config.ratePerSec = args.doubleValue("--rate", 0.0, 0.0, 1e9);
    config.burst = args.doubleValue("--burst", 32.0, 1.0, 1e9);
    config.workers = args.intValue("--service-workers", 2, 1, 1024);
    config.defaultTimeoutMs =
        args.doubleValue("--timeout-ms", 20000.0, 1.0, 1e12);
    config.cacheShards = static_cast<std::size_t>(
        args.intValue("--cache-shards", 4, 1, 64));
    config.cacheShardCapacity = static_cast<std::size_t>(
        args.intValue("--cache-cap", 64, 1, 100000));

    const std::string scriptPath = args.value("--script", "");
    const std::string transcriptPath = args.value("--transcript", "");
    const std::string statsPath = args.value("--stats-json", "");
    const std::string metricsPath = args.value("--metrics-out", "");
    const std::string postmortemPath = args.value("--postmortem", "");
    const int port = args.intValue("--port", 0, 0, 65535);
    const auto maxRequests = static_cast<std::uint64_t>(
        args.intValue("--max-requests", 0, 0, INT_MAX));
    args.rejectUnknown("serve");

    if (scriptPath.empty() == (port == 0))
        fatal("serve: give exactly one of --script FILE (deterministic "
              "replay) or --port N (TCP loop)");

    service::PlanningService server(config);
    telemetry::FlightRecorder recorder;
    if (!postmortemPath.empty())
        server.setFlightRecorder(&recorder, postmortemPath);
    if (!scriptPath.empty()) {
        std::ifstream in(scriptPath);
        if (!in)
            fatal("serve: cannot read %s", scriptPath.c_str());
        service::Script script;
        std::string line;
        while (std::getline(in, line))
            script.push_back(line);
        const std::vector<std::string> transcript =
            server.runScript(script);
        if (transcriptPath.empty()) {
            for (const std::string &response : transcript)
                std::cout << response << "\n";
        } else {
            std::ofstream out(transcriptPath);
            if (!out)
                fatal("serve: cannot write %s", transcriptPath.c_str());
            for (const std::string &response : transcript)
                out << response << "\n";
        }
    } else {
        std::cerr << "doppio serve: listening on 127.0.0.1:" << port
                  << "\n";
        service::serveTcp(server, port, maxRequests);
    }
    if (!statsPath.empty()) {
        std::ofstream out(statsPath);
        if (!out)
            fatal("serve: cannot write %s", statsPath.c_str());
        out << server.statsJson() << "\n";
    }
    if (!metricsPath.empty()) {
        std::ofstream out(metricsPath);
        if (!out)
            fatal("serve: cannot write %s", metricsPath.c_str());
        out << server.metricsText();
    }
    return 0;
}

int
usage()
{
    std::cerr
        << "usage: doppio <command> [options]\n"
           "  list                          list bundled workloads\n"
           "  run <workload> [options]      simulate and print stages\n"
           "  run --jobs-spec FILE [options]\n"
           "                                multi-tenant run (pools +\n"
           "                                tenant lines; see\n"
           "                                src/sched/jobs_spec.h)\n"
           "  profile <workload> [options]  fit and report the model\n"
           "  fio [--disk hdd|ssd|nvme]     bandwidth sweep\n"
           "  optimize [--workers N] [--jobs J]\n"
           "           [--deadline MIN | --budget USD]\n"
           "                                cloud cost optimization\n"
           "                                (J threads, 0 = all cores;\n"
           "                                output identical for any J).\n"
           "                                --deadline: cheapest config\n"
           "                                finishing within MIN "
           "minutes;\n"
           "                                --budget: fastest config "
           "under\n"
           "                                USD; both answered by "
           "pruned\n"
           "                                branch-and-bound\n"
           "  serve --script FILE [--transcript FILE] "
           "[--stats-json FILE]\n"
           "  serve --port N [--max-requests M] [--stats-json FILE]\n"
           "                                what-if planning service:\n"
           "                                deterministic script "
           "replay, or a\n"
           "                                TCP loop on 127.0.0.1:N\n"
           "        tuning: --workers N --sample-nodes N "
           "--timeout-ms T\n"
           "                --queue-cap N --reject-new "
           "--service-workers N\n"
           "                --rate R --burst B --cache-cap N "
           "--cache-shards N\n"
           "                --ms-per-sim-sec F --cell-cost-ms F "
           "--no-validate\n"
           "                --eval-fail-rate F --max-retries N "
           "--backoff-ms T\n"
           "                --breaker-ms T --breaker-depth N\n"
           "                --breaker-cooldown-ms T --service-seed S\n"
           "                --fault-spec SPEC (slow-path gray "
           "failures)\n"
           "                --model-store FILE (persist fitted "
           "models\n"
           "                across restarts) --batch-max N (coalesce "
           "up\n"
           "                to N queued same-profile queries; 1 "
           "off)\n"
           "                --sweep-jobs J (threads for batched "
           "sweeps)\n"
           "                --metrics-out FILE (service Prometheus "
           "text)\n"
           "                --postmortem FILE (flight-recorder dump "
           "on\n"
           "                breaker open)\n"
           "options: --nodes N --cores P --hdfs T --local T\n"
           "         --local-disks K --speculate --verbose\n"
           "         --trace FILE               per-task CSV trace\n"
           "         --perfetto FILE            Chrome trace-event "
           "JSON (Perfetto) +\n"
           "                                    per-stage phase "
           "attribution\n"
           "         --json FILE                metrics as JSON\n"
           "         --metrics-out FILE         Prometheus text "
           "exposition (with\n"
           "                                    --perfetto: adds "
           "bottleneck-detector\n"
           "                                    series + console "
           "alerts)\n"
           "         --no-page-cache            direct I/O "
           "(drop_caches conditions)\n"
           "         --cache-capacity MIB       page cache per node "
           "(0 = RAM - heap)\n"
           "         --cache-dirty-ratio F      writer-throttle "
           "fraction (default 0.2)\n"
           "         --cache-readahead KIB      sequential read-ahead "
           "window\n"
           "memory (run):\n"
           "         --executor-memory SIZE     per-node executor "
           "memory (e.g. 90g)\n"
           "         --memory-fraction F        unified pool share of "
           "the executor (default 0.75)\n"
           "         --storage-fraction F       pool share protected "
           "from execution (default 0.5)\n"
           "         --legacy-memory            seed-compatible "
           "all-or-nothing RDD placement\n"
           "multi-tenant (run):\n"
           "         --jobs-spec FILE           pools and tenants on "
           "one shared cluster\n"
           "         --pool NAME                run one workload as a "
           "tenant of pool NAME\n"
           "fault injection (run):\n"
           "         --fault-spec SPEC          fault file, or inline "
           "statements\n"
           "                                    (e.g. 'task-fail-rate "
           "0.02; kill 2@120;\n"
           "                                    degrade-mem 1@60 0.5')\n"
           "         --task-fail-rate F         per-attempt crash "
           "probability\n"
           "         --kill-node ID@T           kill node ID at T "
           "seconds\n"
           "         fault-spec directives: task-fail-rate, "
           "disk-error-rate,\n"
           "           corrupt-rate, fetch-fail-rate, kill/rejoin "
           "N@T,\n"
           "           degrade N@T F, degrade-mem N@T F, slow-node "
           "N@T F,\n"
           "           partition A,..|B,..@T and heal@T\n"
           "         stream lines in --jobs-spec take checkpoint=T "
           "(periodic\n"
           "           state checkpoints; bounds post-failure replay "
           "and\n"
           "           recovery time, 0 = recover by full replay)\n"
           "unknown flags and out-of-range values exit non-zero\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    try {
        if (command == "list")
            return cmdList(Args(argc, argv, 2));
        if (command == "fio")
            return cmdFio(Args(argc, argv, 2));
        if (command == "optimize")
            return cmdOptimize(Args(argc, argv, 2));
        if (command == "serve")
            return cmdServe(Args(argc, argv, 2));
        if (command == "run" && argc >= 3 && argv[2][0] == '-')
            return cmdRunMulti(Args(argc, argv, 2));
        if ((command == "run" || command == "profile") && argc >= 3)
            return command == "run"
                       ? cmdRun(argv[2], Args(argc, argv, 3))
                       : cmdProfile(argv[2], Args(argc, argv, 3));
    } catch (const FatalError &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
    return usage();
}
