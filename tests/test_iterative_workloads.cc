/**
 * @file
 * Workload tests: the iterative applications (LR, SVM, PageRank)
 * against the paper's §V-B observations.
 */

#include <gtest/gtest.h>

#include "cluster/cluster_config.h"
#include "workloads/logistic_regression.h"
#include "workloads/pagerank.h"
#include "workloads/svm.h"

namespace doppio::workloads {
namespace {

cluster::ClusterConfig
evalCluster(const cluster::HybridConfig &hybrid)
{
    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    config.applyHybrid(hybrid);
    return config;
}

spark::SparkConf
defaultConf()
{
    spark::SparkConf conf;
    conf.executorCores = 36;
    return conf;
}

TEST(LogisticRegressionTest, SmallDatasetCachesInMemory)
{
    LogisticRegression lr(LogisticRegression::Options::small());
    const spark::AppMetrics m =
        lr.run(evalCluster(cluster::HybridConfig::config1()),
               defaultConf());
    // 50 iteration jobs + dataValidator.
    EXPECT_EQ(m.jobs.size(), 51u);
    // Iterations read from memory: zero disk bytes.
    EXPECT_EQ(m.bytesForPrefix("iteration", storage::IoOp::PersistRead),
              0ULL);
    EXPECT_EQ(m.bytesForPrefix("iteration", storage::IoOp::HdfsRead),
              0ULL);
}

TEST(LogisticRegressionTest, LargeDatasetPersistsToDisk)
{
    LogisticRegression lr(LogisticRegression::Options::large());
    const spark::AppMetrics m =
        lr.run(evalCluster(cluster::HybridConfig::config1()),
               defaultConf());
    // 990 GB > 360 GB storage memory: every iteration re-reads it.
    const Bytes per_iter = lr.options().parsedBytes();
    EXPECT_NEAR(
        toGiB(m.bytesForPrefix("iteration",
                               storage::IoOp::PersistRead)),
        50.0 * toGiB(per_iter), 50.0);
    // dataValidator wrote it once.
    EXPECT_NEAR(toGiB(m.bytesForPrefix(
                    "dataValidator", storage::IoOp::PersistWrite)),
                toGiB(per_iter), 1.0);
}

TEST(LogisticRegressionTest, SmallHddSsdGapComesFromHdfsRead)
{
    // Paper Fig. 8a: gap "as large as 2x", from the dataValidator.
    LogisticRegression lr(LogisticRegression::Options::small());
    const spark::AppMetrics ssd =
        lr.run(evalCluster(cluster::HybridConfig::config1()),
               defaultConf());
    const spark::AppMetrics hdd =
        lr.run(evalCluster(cluster::HybridConfig::config4()),
               defaultConf());
    // Iterations identical.
    EXPECT_NEAR(hdd.secondsForPrefix("iteration"),
                ssd.secondsForPrefix("iteration"),
                ssd.secondsForPrefix("iteration") * 0.05);
    // dataValidator slower on HDD.
    const double dv_gap = hdd.secondsForPrefix("dataValidator") /
                          ssd.secondsForPrefix("dataValidator");
    EXPECT_GT(dv_gap, 1.5);
    // Whole-app gap in the paper's ballpark.
    const double app_gap = hdd.seconds() / ssd.seconds();
    EXPECT_GT(app_gap, 1.3);
    EXPECT_LT(app_gap, 2.6);
}

TEST(LogisticRegressionTest, LargeIterationGapNear7x)
{
    // Paper Fig. 8b: 7.0x between HDD and SSD iterations.
    LogisticRegression lr(LogisticRegression::Options::large());
    const spark::AppMetrics ssd =
        lr.run(evalCluster(cluster::HybridConfig::config1()),
               defaultConf());
    const spark::AppMetrics hdd =
        lr.run(evalCluster(cluster::HybridConfig::config4()),
               defaultConf());
    const double gap = hdd.secondsForPrefix("iteration") /
                       ssd.secondsForPrefix("iteration");
    EXPECT_GT(gap, 5.0);
    EXPECT_LT(gap, 9.0);
}

TEST(SvmTest, StructureMatchesPaper)
{
    Svm svm;
    const spark::AppMetrics m =
        svm.run(evalCluster(cluster::HybridConfig::config1()),
                defaultConf());
    // dataValidator + 10 iterations + subtract.
    EXPECT_EQ(m.jobs.size(), 12u);
    // 82 GB cached in memory: iterations have no disk traffic.
    EXPECT_EQ(m.bytesForPrefix("iteration", storage::IoOp::PersistRead),
              0ULL);
    // Subtract shuffles 170 GB.
    EXPECT_NEAR(
        toGiB(m.bytesForPrefix("subtract", storage::IoOp::ShuffleRead)),
        170.0, 1.0);
    EXPECT_NEAR(toGiB(m.bytesForPrefix("subtract",
                                       storage::IoOp::ShuffleWrite)),
                170.0, 1.0);
}

TEST(SvmTest, SubtractGapNear6x)
{
    // Paper Fig. 9: 6.2x on the subtract phase.
    Svm svm;
    const spark::AppMetrics ssd =
        svm.run(evalCluster(cluster::HybridConfig::config1()),
                defaultConf());
    const spark::AppMetrics hdd =
        svm.run(evalCluster(cluster::HybridConfig::config3()),
                defaultConf());
    const double gap = hdd.secondsForPrefix("subtract") /
                       ssd.secondsForPrefix("subtract");
    EXPECT_GT(gap, 4.5);
    EXPECT_LT(gap, 8.0);
}

TEST(PageRankTest, GenerationsPersistToDisk)
{
    PageRank pr;
    const spark::AppMetrics m =
        pr.run(evalCluster(cluster::HybridConfig::config1()),
               defaultConf());
    // graphLoader(2 stages) + 10 iterations + save.
    EXPECT_EQ(m.jobs.size(), 12u);
    // 420 GB > 360 GB storage memory: iterations read and write disk.
    EXPECT_NEAR(
        toGiB(m.bytesForPrefix("iteration",
                               storage::IoOp::PersistRead)),
        10 * 420.0, 50.0);
    EXPECT_NEAR(
        toGiB(m.bytesForPrefix("iteration",
                               storage::IoOp::PersistWrite)),
        10 * 420.0, 50.0);
}

TEST(PageRankTest, IterationGapNear2x)
{
    // Paper Fig. 10: 2.2x — compute-heavy GraphX blends the raw
    // bandwidth ratio down.
    PageRank pr;
    const spark::AppMetrics ssd =
        pr.run(evalCluster(cluster::HybridConfig::config1()),
               defaultConf());
    const spark::AppMetrics hdd =
        pr.run(evalCluster(cluster::HybridConfig::config3()),
               defaultConf());
    const double gap = hdd.secondsForPrefix("iteration") /
                       ssd.secondsForPrefix("iteration");
    EXPECT_GT(gap, 1.7);
    EXPECT_LT(gap, 3.0);
}

TEST(PageRankTest, UnpersistBoundsDiskFootprint)
{
    // Only two generations are alive at a time; with eviction the
    // block manager's memory usage stays bounded.
    PageRank pr;
    sim::Simulator sim;
    cluster::Cluster clusterRef(
        sim, evalCluster(cluster::HybridConfig::config1()));
    // Indirect check via run(): metrics exist for all 10 iterations
    // and the job list is complete (the unpersist path executed).
    const spark::AppMetrics m =
        pr.run(evalCluster(cluster::HybridConfig::config1()),
               defaultConf());
    EXPECT_EQ(m.jobs.size(), 12u);
}

} // namespace
} // namespace doppio::workloads
