/**
 * @file
 * Unit tests for the GCP persistent-disk model.
 */

#include <gtest/gtest.h>

#include "cloud/gcp_disk.h"
#include "common/logging.h"

namespace doppio::cloud {
namespace {

constexpr Bytes kGB = 1000ULL * 1000 * 1000;

TEST(GcpDisk, TypeNames)
{
    EXPECT_STREQ(cloudDiskTypeName(CloudDiskType::Standard),
                 "pd-standard");
    EXPECT_STREQ(cloudDiskTypeName(CloudDiskType::Ssd), "pd-ssd");
}

TEST(GcpDisk, StandardScalesLinearly)
{
    const auto d1 = makeCloudDiskParams(CloudDiskType::Standard,
                                        200 * kGB);
    const auto d2 = makeCloudDiskParams(CloudDiskType::Standard,
                                        400 * kGB);
    EXPECT_NEAR(d2.readIops, 2.0 * d1.readIops, 1.0);
    EXPECT_NEAR(d2.readBandwidth, 2.0 * d1.readBandwidth, 1e3);
}

TEST(GcpDisk, StandardIopsCapAt2TB)
{
    // 0.75 IOPS/GB caps at 1500 around 2 TB — the knee behind the
    // paper's Fig. 14 flattening.
    const auto at2tb = makeCloudDiskParams(CloudDiskType::Standard,
                                           2000 * kGB);
    const auto at4tb = makeCloudDiskParams(CloudDiskType::Standard,
                                           4000 * kGB);
    EXPECT_NEAR(at2tb.readIops, 1500.0, 1.0);
    EXPECT_NEAR(at4tb.readIops, 1500.0, 1.0);
}

TEST(GcpDisk, ThroughputCaps)
{
    const auto big = makeCloudDiskParams(CloudDiskType::Standard,
                                         8000 * kGB);
    EXPECT_NEAR(toMiBps(big.readBandwidth), 180.0, 1.0);
    EXPECT_NEAR(toMiBps(big.writeBandwidth), 120.0, 1.0);
    const auto ssd = makeCloudDiskParams(CloudDiskType::Ssd,
                                         8000 * kGB);
    EXPECT_NEAR(toMiBps(ssd.readBandwidth), 800.0, 1.0);
}

TEST(GcpDisk, SsdMuchFasterAtSmallRequests)
{
    const auto hdd = makeCloudDiskParams(CloudDiskType::Standard,
                                         500 * kGB);
    const auto ssd = makeCloudDiskParams(CloudDiskType::Ssd,
                                         500 * kGB);
    const double hdd_bw =
        hdd.effectiveBandwidth(storage::IoKind::Read, kib(30));
    const double ssd_bw =
        ssd.effectiveBandwidth(storage::IoKind::Read, kib(30));
    EXPECT_GT(ssd_bw / hdd_bw, 10.0);
}

TEST(GcpDisk, TinyDiskStillAdmits)
{
    const auto tiny = makeCloudDiskParams(CloudDiskType::Standard,
                                          1 * kGB);
    EXPECT_GE(tiny.readIops, 1.0);
    EXPECT_NO_THROW(tiny.validate());
}

TEST(GcpDisk, ZeroSizeFatal)
{
    EXPECT_THROW(makeCloudDiskParams(CloudDiskType::Standard, 0),
                 FatalError);
}

TEST(GcpDisk, DiskTypeMapping)
{
    EXPECT_EQ(makeCloudDiskParams(CloudDiskType::Standard, kGB).type,
              storage::DiskType::Hdd);
    EXPECT_EQ(makeCloudDiskParams(CloudDiskType::Ssd, kGB).type,
              storage::DiskType::Ssd);
}

TEST(GcpDisk, ShuffleReadBandwidthGrowsUntilCap)
{
    // At 30 KB requests the standard disk is IOPS-bound: effective
    // bandwidth grows with size until 2 TB, then flattens (Fig. 14).
    double prev = 0.0;
    for (Bytes gb : {200ULL, 500ULL, 1000ULL, 2000ULL}) {
        const auto d = makeCloudDiskParams(CloudDiskType::Standard,
                                           gb * kGB);
        const double bw =
            d.effectiveBandwidth(storage::IoKind::Read, kib(30));
        EXPECT_GT(bw, prev);
        prev = bw;
    }
    const auto big = makeCloudDiskParams(CloudDiskType::Standard,
                                         3200 * kGB);
    EXPECT_NEAR(big.effectiveBandwidth(storage::IoKind::Read, kib(30)),
                prev, prev * 0.01);
}

} // namespace
} // namespace doppio::cloud
