/**
 * @file
 * Unit tests for platform (disk) profiles.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/units.h"
#include "model/platform_profile.h"

namespace doppio::model {
namespace {

TEST(PlatformProfile, FromDisksBuildsAllTables)
{
    const PlatformProfile p = PlatformProfile::fromDisks(
        storage::makeSsdParams(), storage::makeHddParams());
    EXPECT_FALSE(p.hdfsRead.empty());
    EXPECT_FALSE(p.hdfsWrite.empty());
    EXPECT_FALSE(p.localRead.empty());
    EXPECT_FALSE(p.localWrite.empty());
}

TEST(PlatformProfile, RoutesOpsToCorrectDevice)
{
    // SSD on HDFS, HDD on Spark local: shuffle/persist must see HDD
    // numbers, HDFS ops must see SSD numbers.
    const PlatformProfile p = PlatformProfile::fromDisks(
        storage::makeSsdParams(), storage::makeHddParams());
    const double rs = static_cast<double>(kib(30));
    const double shuffle =
        p.bandwidthFor(storage::IoOp::ShuffleRead, rs);
    const double hdfs = p.bandwidthFor(storage::IoOp::HdfsRead, rs);
    EXPECT_NEAR(toMiBps(shuffle), 15.0, 2.0);
    EXPECT_NEAR(toMiBps(hdfs), 480.0, 40.0);
    EXPECT_NEAR(toMiBps(p.bandwidthFor(storage::IoOp::PersistRead, rs)),
                15.0, 2.0);
}

TEST(PlatformProfile, WriteOpsUseWriteTables)
{
    const PlatformProfile p = PlatformProfile::fromDisks(
        storage::makeHddParams(), storage::makeHddParams());
    const double rs = static_cast<double>(mib(365));
    EXPECT_NEAR(
        toMiBps(p.bandwidthFor(storage::IoOp::ShuffleWrite, rs)), 100.0,
        10.0);
    EXPECT_NEAR(
        toMiBps(p.bandwidthFor(storage::IoOp::PersistWrite, rs)), 100.0,
        10.0);
    EXPECT_NEAR(toMiBps(p.bandwidthFor(storage::IoOp::HdfsWrite, rs)),
                100.0, 10.0);
}

TEST(PlatformProfile, RawOpsAreFatal)
{
    const PlatformProfile p = PlatformProfile::fromDisks(
        storage::makeHddParams(), storage::makeHddParams());
    EXPECT_THROW(p.bandwidthFor(storage::IoOp::RawRead, 1.0),
                 FatalError);
}

TEST(PlatformProfile, BandwidthMonotoneInRequestSize)
{
    const PlatformProfile p = PlatformProfile::fromDisks(
        storage::makeHddParams(), storage::makeHddParams());
    double prev = 0.0;
    for (double rs = 4096.0; rs <= 134217728.0; rs *= 2.0) {
        const double bw =
            p.bandwidthFor(storage::IoOp::ShuffleRead, rs);
        EXPECT_GE(bw, prev * 0.99);
        prev = bw;
    }
}

} // namespace
} // namespace doppio::model
