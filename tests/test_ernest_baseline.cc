/**
 * @file
 * Tests for the Ernest-like baseline model (paper §VII-A's prior
 * work): validates the least-squares fit and demonstrates the failure
 * mode the paper criticizes — no storage dimension.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "model/ernest_baseline.h"
#include "workloads/svm.h"

namespace doppio::model {
namespace {

TEST(ErnestBaseline, RecoversExactCoefficients)
{
    // Synthetic ground truth t(C) = 5 + 1200/C + 3*log(C) + 0.01*C.
    const std::array<double, 4> truth = {5.0, 1200.0, 3.0, 0.01};
    std::vector<ErnestSample> samples;
    for (int nodes : {2, 3, 5}) {
        for (int cores : {1, 4, 16}) {
            const double c = nodes * cores;
            samples.push_back(
                {nodes, cores,
                 truth[0] + truth[1] / c + truth[2] * std::log(c) +
                     truth[3] * c});
        }
    }
    const ErnestModel model = fitErnest("synthetic", samples);
    // The solver adds a tiny ridge term, so allow a small tolerance.
    for (std::size_t i = 0; i < truth.size(); ++i)
        EXPECT_NEAR(model.theta[i], truth[i],
                    std::max(1e-3, std::fabs(truth[i]) * 1e-4));
    // Interpolates an unseen point exactly.
    EXPECT_NEAR(model.predictSeconds(4, 6),
                truth[0] + truth[1] / 24 + truth[2] * std::log(24.0) +
                    truth[3] * 24,
                1e-5);
}

TEST(ErnestBaseline, TooFewSamplesFatal)
{
    std::vector<ErnestSample> samples = {
        {1, 1, 10.0}, {1, 2, 6.0}, {1, 4, 4.0}};
    EXPECT_THROW(fitErnest("x", samples), FatalError);
}

TEST(ErnestBaseline, DegenerateDesignFatal)
{
    // All samples at the same C: the design matrix is singular.
    std::vector<ErnestSample> samples = {
        {1, 8, 10.0}, {2, 4, 10.0}, {4, 2, 10.0}, {8, 1, 10.0}};
    EXPECT_THROW(fitErnest("x", samples), FatalError);
}

TEST(ErnestBaseline, NullRunnerFatal)
{
    EXPECT_THROW(
        fitErnestFromRuns(nullptr,
                          cluster::ClusterConfig::evaluationCluster(),
                          spark::SparkConf{}, "x"),
        FatalError);
}

TEST(ErnestBaseline, PredictsSsdScalingButIsDiskBlind)
{
    workloads::Svm::Options options;
    options.partitions = 600;
    options.cachedBytes = gib(41);
    options.shuffleBytes = gib(85);
    options.iterations = 3;
    const workloads::Svm svm(options);
    const cluster::ClusterConfig base =
        cluster::ClusterConfig::evaluationCluster();
    const ErnestModel model = fitErnestFromRuns(
        svm.runner(), base, spark::SparkConf{}, "SVM");

    // On SSDs (the training regime) the fit is in the right ballpark
    // (even here its smooth {1/C, log C, C} form misses the
    // dataValidator's read-limit plateau)...
    cluster::ClusterConfig ssd = base;
    ssd.applyHybrid(cluster::HybridConfig::config1());
    spark::SparkConf conf;
    conf.executorCores = 12;
    const double exp_ssd = svm.run(ssd, conf).seconds();
    EXPECT_LT(relativeError(model.predictSeconds(10, 12), exp_ssd),
              0.6);

    // ...but it predicts the SAME time for an HDD cluster, which is
    // several times slower — the paper's §VII-A criticism.
    cluster::ClusterConfig hdd = base;
    hdd.applyHybrid(cluster::HybridConfig::config3());
    const double exp_hdd = svm.run(hdd, conf).seconds();
    EXPECT_GT(exp_hdd, 1.8 * exp_ssd);
    EXPECT_DOUBLE_EQ(model.predictSeconds(10, 12),
                     model.predictSeconds(10, 12));
    EXPECT_GT(relativeError(model.predictSeconds(10, 12), exp_hdd),
              0.4);
}

} // namespace
} // namespace doppio::model
