/**
 * @file
 * Unit tests for lineage-to-stage compilation.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "dfs/hdfs.h"
#include "sim/simulator.h"
#include "spark/dag_scheduler.h"

namespace doppio::spark {
namespace {

/** Find the first I/O phase of a given op in a group; nullptr if none. */
const IoPhaseSpec *
findIo(const TaskGroupSpec &group, storage::IoOp op)
{
    for (const PhaseSpec &phase : group.phases) {
        if (const auto *io = std::get_if<IoPhaseSpec>(&phase)) {
            if (io->op == op)
                return io;
        }
    }
    return nullptr;
}

/** Sum of compute-phase seconds in a group. */
double
computeSeconds(const TaskGroupSpec &group)
{
    double total = 0.0;
    for (const PhaseSpec &phase : group.phases) {
        if (const auto *c = std::get_if<ComputePhaseSpec>(&phase))
            total += c->seconds;
    }
    return total;
}

class DagSchedulerTest : public ::testing::Test
{
  protected:
    DagSchedulerTest()
        : cluster_(sim_, cluster::ClusterConfig::motivationCluster()),
          hdfs_(cluster_),
          blockManager_(cluster_.totalStorageMemory(),
                        conf_.memoryExpansionFactor),
          dag_(conf_, hdfs_, blockManager_)
    {
        file_ = hdfs_.addFile("input", gib(1)); // 8 x 128 MiB blocks
    }

    sim::Simulator sim_;
    cluster::Cluster cluster_;
    dfs::Hdfs hdfs_;
    SparkConf conf_;
    BlockManager blockManager_;
    DagScheduler dag_;
    dfs::FileId file_ = 0;
};

TEST_F(DagSchedulerTest, SourceOnlyJobIsOneStage)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    const JobSpec job = dag_.compile("count", src, ActionSpec::count());
    ASSERT_EQ(job.stages.size(), 1u);
    const StageSpec &stage = job.stages[0];
    EXPECT_EQ(stage.name, "count");
    ASSERT_EQ(stage.groups.size(), 1u);
    EXPECT_EQ(stage.groups[0].count, 8);
    const IoPhaseSpec *read =
        findIo(stage.groups[0], storage::IoOp::HdfsRead);
    ASSERT_NE(read, nullptr);
    EXPECT_EQ(read->bytesPerTask, gib(1) / 8);
    EXPECT_EQ(read->requestSize, 128 * kMiB);
}

TEST_F(DagSchedulerTest, ShuffleSplitsIntoTwoStages)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    ShuffleSpec spec;
    spec.bytes = gib(2);
    RddRef grouped = Rdd::shuffled("grouped", src, 16, gib(2), spec);
    const JobSpec job =
        dag_.compile("job", grouped, ActionSpec::count());
    ASSERT_EQ(job.stages.size(), 2u);

    const StageSpec &map = job.stages[0];
    EXPECT_EQ(map.name, "grouped.map");
    EXPECT_EQ(map.numTasks(), 8);
    const IoPhaseSpec *write =
        findIo(map.groups[0], storage::IoOp::ShuffleWrite);
    ASSERT_NE(write, nullptr);
    EXPECT_EQ(write->bytesPerTask, gib(2) / 8);

    const StageSpec &result = job.stages[1];
    EXPECT_EQ(result.numTasks(), 16);
    const IoPhaseSpec *read =
        findIo(result.groups[0], storage::IoOp::ShuffleRead);
    ASSERT_NE(read, nullptr);
    EXPECT_EQ(read->bytesPerTask, gib(2) / 16);
    // Request size = perReducer / M mappers (paper §III-C2).
    EXPECT_EQ(read->requestSize, gib(2) / 16 / 8);
    EXPECT_EQ(read->fanIn, 8);
}

TEST_F(DagSchedulerTest, ShuffleSkippedWhenFilesExist)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    ShuffleSpec spec;
    spec.bytes = gib(2);
    RddRef grouped = Rdd::shuffled("grouped", src, 16, gib(2), spec);
    dag_.compile("job1", grouped, ActionSpec::count());
    // Second job over the same shuffle: map stage must be skipped
    // (this is GATK4's SF stage re-reading MD's shuffle, Table IV).
    const JobSpec job2 =
        dag_.compile("job2", grouped, ActionSpec::count());
    ASSERT_EQ(job2.stages.size(), 1u);
    EXPECT_NE(findIo(job2.stages[0].groups[0],
                     storage::IoOp::ShuffleRead),
              nullptr);
}

TEST_F(DagSchedulerTest, CachedRddReadsForFree)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    RddRef parsed = Rdd::narrow("parsed", {src}, gib(1));
    parsed->memoryBytes = gib(1);
    parsed->persist(StorageLevel::MemoryAndDisk);
    dag_.compile("validate", parsed, ActionSpec::count());
    ASSERT_EQ(blockManager_.placementOf(parsed.get()),
              BlockManager::Placement::Memory);

    RddRef iter = Rdd::narrow("iter", {parsed}, mib(1));
    iter->cpuPerInputByte = 1e-9;
    const JobSpec job = dag_.compile("iter", iter, ActionSpec::count());
    ASSERT_EQ(job.stages.size(), 1u);
    const TaskGroupSpec &group = job.stages[0].groups[0];
    // No I/O phases at all: input is cached in memory.
    EXPECT_EQ(findIo(group, storage::IoOp::HdfsRead), nullptr);
    EXPECT_EQ(findIo(group, storage::IoOp::PersistRead), nullptr);
    EXPECT_GT(computeSeconds(group), 0.0);
}

TEST_F(DagSchedulerTest, DiskPersistedRddReadsFromLocalDisk)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    RddRef parsed = Rdd::narrow("parsed", {src}, gib(1));
    // Deserialized footprint larger than cluster storage memory.
    parsed->memoryBytes = cluster_.totalStorageMemory() + gib(1);
    parsed->persist(StorageLevel::MemoryAndDisk);
    const JobSpec first =
        dag_.compile("validate", parsed, ActionSpec::count());
    // The materializing stage writes the partitions to Spark local.
    const IoPhaseSpec *persist_write = findIo(
        first.stages[0].groups[0], storage::IoOp::PersistWrite);
    ASSERT_NE(persist_write, nullptr);
    EXPECT_EQ(persist_write->requestSize, conf_.diskStoreRequestSize);

    RddRef iter = Rdd::narrow("iter", {parsed}, mib(1));
    const JobSpec job = dag_.compile("iter", iter, ActionSpec::count());
    const IoPhaseSpec *persist_read = findIo(
        job.stages[0].groups[0], storage::IoOp::PersistRead);
    ASSERT_NE(persist_read, nullptr);
    EXPECT_EQ(persist_read->bytesPerTask, gib(1) / 8);
    EXPECT_EQ(persist_read->requestSize, conf_.diskStoreRequestSize);
}

TEST_F(DagSchedulerTest, UnmaterializedLineageIsRecomputed)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    RddRef derived = Rdd::narrow("derived", {src}, gib(1));
    // No persist: every job re-reads from HDFS.
    dag_.compile("job1", derived, ActionSpec::count());
    const JobSpec job2 =
        dag_.compile("job2", derived, ActionSpec::count());
    EXPECT_NE(findIo(job2.stages[0].groups[0], storage::IoOp::HdfsRead),
              nullptr);
}

TEST_F(DagSchedulerTest, UnionProducesPerBranchGroups)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    ShuffleSpec spec;
    spec.bytes = gib(2);
    RddRef grouped = Rdd::shuffled("grouped", src, 16, gib(2), spec);
    RddRef filtered = Rdd::narrow("filtered", {src}, mib(64));
    RddRef unioned =
        Rdd::narrow("unioned", {grouped, filtered}, gib(2) + mib(64));
    RddRef result = Rdd::narrow("result", {unioned}, mib(1));
    result->cpuPerInputByte = 1.0e-6;
    const JobSpec job =
        dag_.compile("job", result, ActionSpec::count());
    const StageSpec &stage = job.stages.back();
    ASSERT_EQ(stage.groups.size(), 2u);
    EXPECT_EQ(stage.numTasks(), 16 + 8);
    // Per-branch compute scales with each branch's bytes per task:
    // 128 MiB shuffle partitions vs 8 MiB filtered partitions.
    const double shuffle_compute = computeSeconds(stage.groups[0]);
    const double filter_compute = computeSeconds(stage.groups[1]);
    EXPECT_GT(shuffle_compute, 10.0 * filter_compute);
}

TEST_F(DagSchedulerTest, SaveActionAppendsHdfsWrite)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    RddRef out = Rdd::narrow("out", {src}, gib(1));
    const JobSpec job = dag_.compile(
        "save", out, ActionSpec::saveAsHadoopFile(gib(1)));
    const IoPhaseSpec *write =
        findIo(job.stages[0].groups[0], storage::IoOp::HdfsWrite);
    ASSERT_NE(write, nullptr);
    EXPECT_EQ(write->bytesPerTask, gib(1) / 8);
}

TEST_F(DagSchedulerTest, GcSensitivityPropagatesToStage)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    RddRef keyed = Rdd::narrow("keyed", {src}, gib(1));
    keyed->gcSensitivity = 0.35;
    ShuffleSpec spec;
    spec.bytes = gib(1);
    RddRef grouped = Rdd::shuffled("grouped", keyed, 16, gib(1), spec);
    const JobSpec job =
        dag_.compile("job", grouped, ActionSpec::count());
    EXPECT_DOUBLE_EQ(job.stages[0].gcSensitivity, 0.35);
    EXPECT_DOUBLE_EQ(job.stages[1].gcSensitivity, 0.0);
}

TEST_F(DagSchedulerTest, MapStageNameOverride)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    ShuffleSpec spec;
    spec.bytes = gib(1);
    spec.mapStageName = "MD";
    RddRef grouped = Rdd::shuffled("grouped", src, 16, gib(1), spec);
    const JobSpec job =
        dag_.compile("BR", grouped, ActionSpec::count());
    EXPECT_EQ(job.stages[0].name, "MD");
    EXPECT_EQ(job.stages[1].name, "BR");
}

TEST_F(DagSchedulerTest, NullTargetFatal)
{
    EXPECT_THROW(dag_.compile("x", nullptr, ActionSpec::count()),
                 FatalError);
}

TEST_F(DagSchedulerTest, ShuffleWriteChunksCappedBySpillSize)
{
    conf_.shuffleSpillChunkCap = mib(64);
    RddRef src = Rdd::source("input", hdfs_, file_);
    ShuffleSpec spec;
    spec.bytes = gib(2); // 256 MiB per mapper > 64 MiB cap
    RddRef grouped = Rdd::shuffled("grouped", src, 16, gib(2), spec);
    const JobSpec job =
        dag_.compile("job", grouped, ActionSpec::count());
    const IoPhaseSpec *write =
        findIo(job.stages[0].groups[0], storage::IoOp::ShuffleWrite);
    ASSERT_NE(write, nullptr);
    EXPECT_LE(write->requestSize, mib(64));
}

} // namespace
} // namespace doppio::spark
