/**
 * @file
 * Unit tests for the RDD lineage model.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "dfs/hdfs.h"
#include "sim/simulator.h"
#include "spark/rdd.h"

namespace doppio::spark {
namespace {

class RddTest : public ::testing::Test
{
  protected:
    RddTest()
        : cluster_(sim_, cluster::ClusterConfig::motivationCluster()),
          hdfs_(cluster_)
    {
        file_ = hdfs_.addFile("input", gib(1));
    }

    sim::Simulator sim_;
    cluster::Cluster cluster_;
    dfs::Hdfs hdfs_;
    dfs::FileId file_ = 0;
};

TEST_F(RddTest, SourcePartitionsEqualBlocks)
{
    RddRef rdd = Rdd::source("input", hdfs_, file_);
    EXPECT_TRUE(rdd->isSource());
    EXPECT_FALSE(rdd->isShuffled());
    EXPECT_EQ(rdd->numPartitions, 8); // 1 GiB / 128 MiB
    EXPECT_EQ(rdd->bytes, gib(1));
}

TEST_F(RddTest, EmptySourceFileFatal)
{
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    sim::Simulator sim;
    cluster::Cluster cluster(sim, config);
    dfs::Hdfs hdfs(cluster);
    const dfs::FileId empty = hdfs.addFile("empty", 0);
    EXPECT_THROW(Rdd::source("r", hdfs, empty), FatalError);
}

TEST_F(RddTest, NarrowPreservesPartitions)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    RddRef mapped = Rdd::narrow("mapped", {src}, gib(2));
    EXPECT_EQ(mapped->numPartitions, src->numPartitions);
    EXPECT_EQ(mapped->deps.size(), 1u);
    EXPECT_FALSE(mapped->deps[0].shuffle);
}

TEST_F(RddTest, UnionSumsPartitions)
{
    RddRef a = Rdd::source("input", hdfs_, file_);
    RddRef b = Rdd::narrow("b", {a}, gib(1));
    RddRef u = Rdd::narrow("u", {a, b}, gib(2));
    EXPECT_EQ(u->numPartitions, 16);
    EXPECT_EQ(u->deps.size(), 2u);
}

TEST_F(RddTest, NarrowRequiresParents)
{
    EXPECT_THROW(Rdd::narrow("x", {}, gib(1)), FatalError);
    EXPECT_THROW(Rdd::narrow("x", {nullptr}, gib(1)), FatalError);
}

TEST_F(RddTest, ShuffledStructure)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    ShuffleSpec spec;
    spec.bytes = gib(4);
    RddRef grouped = Rdd::shuffled("grouped", src, 100, gib(4), spec);
    EXPECT_TRUE(grouped->isShuffled());
    EXPECT_EQ(grouped->numPartitions, 100);
    EXPECT_EQ(grouped->shuffle.bytes, gib(4));
}

TEST_F(RddTest, ShuffledValidation)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    ShuffleSpec ok;
    ok.bytes = gib(1);
    EXPECT_THROW(Rdd::shuffled("s", nullptr, 10, gib(1), ok),
                 FatalError);
    EXPECT_THROW(Rdd::shuffled("s", src, 0, gib(1), ok), FatalError);
    ShuffleSpec zero;
    EXPECT_THROW(Rdd::shuffled("s", src, 10, gib(1), zero), FatalError);
}

TEST_F(RddTest, PersistReturnsSelf)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    RddRef same = src->persist(StorageLevel::MemoryAndDisk);
    EXPECT_EQ(same.get(), src.get());
    EXPECT_EQ(src->storageLevel, StorageLevel::MemoryAndDisk);
}

TEST_F(RddTest, BytesPerPartition)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    EXPECT_EQ(src->bytesPerPartition(), gib(1) / 8);
}

TEST_F(RddTest, MemoryFootprintDefaultsToExpansion)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    EXPECT_EQ(src->memoryFootprint(3.0), 3 * gib(1));
    src->memoryBytes = gib(7);
    EXPECT_EQ(src->memoryFootprint(3.0), gib(7));
}

TEST_F(RddTest, MapStageNameDefaultsAndOverrides)
{
    RddRef src = Rdd::source("input", hdfs_, file_);
    ShuffleSpec spec;
    spec.bytes = gib(1);
    RddRef s1 = Rdd::shuffled("grouped", src, 4, gib(1), spec);
    EXPECT_EQ(s1->mapStageName(), "grouped.map");
    spec.mapStageName = "MD";
    RddRef s2 = Rdd::shuffled("grouped2", src, 4, gib(1), spec);
    EXPECT_EQ(s2->mapStageName(), "MD");
}

TEST(StorageLevelTest, Names)
{
    EXPECT_STREQ(storageLevelName(StorageLevel::None), "NONE");
    EXPECT_STREQ(storageLevelName(StorageLevel::MemoryOnly),
                 "MEMORY_ONLY");
    EXPECT_STREQ(storageLevelName(StorageLevel::MemoryAndDisk),
                 "MEMORY_AND_DISK");
    EXPECT_STREQ(storageLevelName(StorageLevel::DiskOnly), "DISK_ONLY");
}

} // namespace
} // namespace doppio::spark
