/**
 * @file
 * Unit tests for the interpolated lookup table.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/lookup_table.h"
#include "common/units.h"

namespace doppio {
namespace {

TEST(LookupTable, ExactAnchors)
{
    LookupTable t({{1.0, 10.0}, {2.0, 20.0}, {4.0, 40.0}});
    EXPECT_DOUBLE_EQ(t.at(1.0), 10.0);
    EXPECT_DOUBLE_EQ(t.at(2.0), 20.0);
    EXPECT_DOUBLE_EQ(t.at(4.0), 40.0);
}

TEST(LookupTable, ClampsBelowAndAbove)
{
    LookupTable t({{10.0, 1.0}, {100.0, 2.0}});
    EXPECT_DOUBLE_EQ(t.at(1.0), 1.0);
    EXPECT_DOUBLE_EQ(t.at(1e9), 2.0);
}

TEST(LookupTable, LogScaleMidpoint)
{
    // In log-x space, x=2 is the midpoint of [1, 4].
    LookupTable t({{1.0, 0.0}, {4.0, 10.0}}, LookupTable::Scale::Log);
    EXPECT_NEAR(t.at(2.0), 5.0, 1e-9);
}

TEST(LookupTable, LinearScaleMidpoint)
{
    LookupTable t({{0.0, 0.0}, {4.0, 10.0}}, LookupTable::Scale::Linear);
    EXPECT_NEAR(t.at(2.0), 5.0, 1e-9);
}

TEST(LookupTable, UnsortedInputIsSorted)
{
    LookupTable t({{4.0, 40.0}, {1.0, 10.0}, {2.0, 20.0}});
    EXPECT_DOUBLE_EQ(t.at(1.0), 10.0);
    EXPECT_EQ(t.points().front().first, 1.0);
    EXPECT_EQ(t.points().back().first, 4.0);
}

TEST(LookupTable, AddPointKeepsOrder)
{
    LookupTable t({{1.0, 1.0}, {4.0, 4.0}});
    t.addPoint(2.0, 2.0);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_DOUBLE_EQ(t.at(2.0), 2.0);
}

TEST(LookupTable, DuplicateAnchorIsFatal)
{
    EXPECT_THROW(LookupTable({{1.0, 1.0}, {1.0, 2.0}}), FatalError);
    LookupTable t({{1.0, 1.0}});
    EXPECT_THROW(t.addPoint(1.0, 3.0), FatalError);
}

TEST(LookupTable, LogScaleRejectsNonPositiveX)
{
    EXPECT_THROW(LookupTable({{0.0, 1.0}, {1.0, 2.0}},
                             LookupTable::Scale::Log),
                 FatalError);
    LookupTable t({{1.0, 1.0}});
    EXPECT_THROW(t.addPoint(-1.0, 3.0), FatalError);
}

TEST(LookupTable, EmptyQueryIsFatal)
{
    LookupTable t;
    EXPECT_TRUE(t.empty());
    EXPECT_THROW(t.at(1.0), FatalError);
}

TEST(LookupTable, MonotoneDataStaysMonotone)
{
    // A bandwidth-vs-request-size curve: interpolation must preserve
    // monotonicity between anchors.
    LookupTable t({{4096.0, 2.0e6},
                   {30720.0, 15.0e6},
                   {1048576.0, 100.0e6},
                   {134217728.0, 130.0e6}});
    double prev = 0.0;
    for (double x = 4096.0; x <= 134217728.0; x *= 1.7) {
        const double y = t.at(x);
        EXPECT_GE(y, prev);
        prev = y;
    }
}

/** Property sweep: interpolated values lie within anchor bounds. */
class LookupTableInterpolation
    : public ::testing::TestWithParam<double>
{};

TEST_P(LookupTableInterpolation, WithinNeighborBounds)
{
    LookupTable t({{1.0, 3.0}, {10.0, 7.0}, {100.0, 5.0},
                   {1000.0, 20.0}});
    const double x = GetParam();
    const double y = t.at(x);
    EXPECT_GE(y, 3.0);
    EXPECT_LE(y, 20.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LookupTableInterpolation,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0,
                                           31.6, 100.0, 316.0, 1000.0,
                                           5000.0));

} // namespace
} // namespace doppio
