/**
 * @file
 * Tests for the telemetry subsystem: log-linear histogram semantics
 * and error bounds, registry/exposition determinism, the flight
 * recorder's bounded rings and postmortem dumps (including the chaos
 * harness wiring), the online I/O-bottleneck detector and its
 * reconciliation with the offline phase report, and the planning
 * service's metrics surface.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/harness.h"
#include "chaos/schedule_generator.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "dfs/hdfs.h"
#include "service/server.h"
#include "sim/simulator.h"
#include "spark/task_engine.h"
#include "telemetry/bottleneck.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"
#include "trace/phase_report.h"
#include "trace/trace_collector.h"

namespace doppio {
namespace {

using telemetry::BottleneckAlert;
using telemetry::BottleneckDetector;
using telemetry::FlightRecorder;
using telemetry::Histogram;
using telemetry::Labels;
using telemetry::Registry;

// ----------------------------------------------------------- histogram

TEST(Histogram, EmptyState)
{
    const Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    for (double q : {0.0, 0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h.quantile(q), 0.0);
    EXPECT_TRUE(h.buckets().empty());
}

TEST(Histogram, SingleSampleExactForAnyQ)
{
    Histogram h;
    h.observe(123.456);
    for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h.quantile(q), 123.456);
    EXPECT_DOUBLE_EQ(h.min(), 123.456);
    EXPECT_DOUBLE_EQ(h.max(), 123.456);
}

TEST(Histogram, ConstantSamplesViaObserveManyAreExact)
{
    Histogram h;
    h.observeMany(7.5, 10'000);
    EXPECT_EQ(h.count(), 10'000u);
    EXPECT_DOUBLE_EQ(h.sum(), 75'000.0);
    // All samples share one bucket; the clamp to [min, max] makes
    // every quantile exact.
    for (double q : {0.0, 0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h.quantile(q), 7.5);
}

TEST(Histogram, QuantileErrorBoundedBySubBucketWidth)
{
    Histogram h; // default 32 sub-buckets => 1/32 relative bound
    std::vector<double> samples;
    for (int i = 1; i <= 1000; ++i) {
        samples.push_back(static_cast<double>(i));
        h.observe(static_cast<double>(i));
    }
    for (double q : {0.50, 0.95, 0.99}) {
        // Nearest-rank ground truth on the sorted samples.
        const std::size_t rank = static_cast<std::size_t>(
            std::max(1.0, std::ceil(q * 1000.0)));
        const double truth = samples[rank - 1];
        const double estimate = h.quantile(q);
        EXPECT_GE(estimate, truth) << "q=" << q;
        EXPECT_LE(estimate, truth * (1.0 + 1.0 / 32.0)) << "q=" << q;
    }
}

TEST(Histogram, NegativeSamplesClampToZero)
{
    Histogram h;
    h.observe(-5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, MergeMatchesDirectObservation)
{
    Histogram direct, a, b;
    for (int i = 1; i <= 100; ++i) {
        const double x = static_cast<double>(i) * 0.37;
        direct.observe(x);
        (i % 2 ? a : b).observe(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), direct.count());
    EXPECT_DOUBLE_EQ(a.sum(), direct.sum());
    EXPECT_DOUBLE_EQ(a.min(), direct.min());
    EXPECT_DOUBLE_EQ(a.max(), direct.max());
    for (double q : {0.5, 0.95, 0.99})
        EXPECT_DOUBLE_EQ(a.quantile(q), direct.quantile(q));

    // Merging an empty histogram is a no-op.
    const Histogram empty;
    const std::uint64_t before = a.count();
    a.merge(empty);
    EXPECT_EQ(a.count(), before);
}

TEST(Histogram, MergeWithIncompatibleLayoutPanics)
{
    Histogram coarse(1e-9, 16), fine(1e-9, 32);
    coarse.observe(1.0);
    EXPECT_DEATH(fine.merge(coarse), "incompatible layouts");
}

// ------------------------------------------------------------ registry

TEST(Registry, ExpositionIsInsertionOrderIndependent)
{
    auto feed = [](Registry &r, bool reversed) {
        const Labels ssd = {{"role", "hdfs"}, {"type", "ssd"}};
        const Labels hdd = {{"role", "local"}, {"type", "hdd"}};
        if (reversed) {
            r.gauge("doppio_test_depth", "Queue depth").set(3.0);
            r.counter("doppio_test_reads_total", "Reads", hdd).inc(2);
            r.counter("doppio_test_reads_total", "Reads", ssd).inc(5);
        } else {
            r.counter("doppio_test_reads_total", "Reads", ssd).inc(5);
            r.counter("doppio_test_reads_total", "Reads", hdd).inc(2);
            r.gauge("doppio_test_depth", "Queue depth").set(3.0);
        }
        r.histogram("doppio_test_latency_seconds", "Latency")
            .observe(0.125);
    };
    Registry forward, backward;
    feed(forward, false);
    feed(backward, true);
    EXPECT_EQ(forward.prometheusText(), backward.prometheusText());
}

TEST(Registry, LookupsAreIdempotentAndTyped)
{
    Registry r;
    telemetry::Counter &c =
        r.counter("doppio_test_events_total", "Events");
    c.inc(4);
    // Second lookup returns the same instrument.
    r.counter("doppio_test_events_total", "Events").inc(1);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(r.seriesCount(), 1u);
    // Same name, different type: configuration error.
    EXPECT_THROW(r.gauge("doppio_test_events_total", "Events"),
                 FatalError);
    // Invalid metric name: configuration error.
    EXPECT_THROW(r.counter("0bad name", "Bad"), FatalError);
}

TEST(Registry, FindReturnsNullWhenAbsentOrMistyped)
{
    Registry r;
    r.counter("doppio_test_events_total", "Events").inc(1);
    EXPECT_EQ(r.findCounter("doppio_test_missing_total"), nullptr);
    EXPECT_EQ(r.findGauge("doppio_test_events_total"), nullptr);
    ASSERT_NE(r.findCounter("doppio_test_events_total"), nullptr);
    EXPECT_EQ(r.findCounter("doppio_test_events_total")->value(), 1u);
}

TEST(Registry, SerializeLabelsSortsAndEscapes)
{
    const std::string tricky = "he\"llo\\\n";
    EXPECT_EQ(telemetry::serializeLabels({{"b", "x"}, {"a", tricky}}),
              "a=\"he\\\"llo\\\\\\n\",b=\"x\"");
    EXPECT_THROW(telemetry::serializeLabels({{"a", "1"}, {"a", "2"}}),
                 FatalError);
    EXPECT_THROW(telemetry::serializeLabels({{"bad name", "v"}}),
                 FatalError);
}

TEST(Registry, HistogramExpositionIsCumulative)
{
    Registry r;
    Histogram &h =
        r.histogram("doppio_test_latency_seconds", "Latency");
    h.observe(0.001);
    h.observe(0.002);
    h.observe(4.0);
    std::ostringstream os;
    r.writePrometheus(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("# TYPE doppio_test_latency_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("doppio_test_latency_seconds_bucket{le=\""),
              std::string::npos);
    EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 3"), std::string::npos);
    EXPECT_NE(text.find("doppio_test_latency_seconds_count 3"),
              std::string::npos);
    EXPECT_NE(text.find("doppio_test_latency_seconds_sum"),
              std::string::npos);

    // Bucket counts are cumulative: non-decreasing in le order.
    std::istringstream lines(text);
    std::string line;
    std::uint64_t last = 0;
    while (std::getline(lines, line)) {
        const std::string marker = "_bucket{le=\"";
        if (line.find(marker) == std::string::npos)
            continue;
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos);
        const std::uint64_t count =
            std::stoull(line.substr(space + 1));
        EXPECT_GE(count, last) << line;
        last = count;
    }
    EXPECT_EQ(last, 3u);
}

// ----------------------------------------------------- flight recorder

trace::TraceEvent
diskEvent(int n)
{
    trace::TraceEvent event;
    event.type = trace::TraceEvent::Type::Instant;
    event.cat = "disk";
    event.name = "req" + std::to_string(n);
    event.start = static_cast<Tick>(n) * 1000;
    event.end = event.start;
    return event;
}

TEST(FlightRecorder, RingKeepsMostRecentPerCategory)
{
    FlightRecorder recorder(4);
    for (int i = 0; i < 10; ++i)
        recorder.record(diskEvent(i));
    EXPECT_EQ(recorder.size(), 4u);
    EXPECT_EQ(recorder.dropped(), 6u);
    EXPECT_EQ(recorder.recorded(), 10u);

    std::ostringstream os;
    recorder.dump(os, "test");
    const std::string text = os.str();
    // Oldest entries fell out of the ring; the newest four remain.
    EXPECT_EQ(text.find("req5"), std::string::npos);
    EXPECT_NE(text.find("req6"), std::string::npos);
    EXPECT_NE(text.find("req9"), std::string::npos);

    recorder.clear();
    EXPECT_EQ(recorder.size(), 0u);
    EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(FlightRecorder, DumpHasHeaderReasonAndCategorySections)
{
    FlightRecorder recorder;
    recorder.record(diskEvent(1));
    recorder.note("something went sideways", 2000);
    std::ostringstream os;
    recorder.dump(os, "unit-test-reason");
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("# doppio flight recorder\n", 0), 0u);
    EXPECT_NE(text.find("# reason: unit-test-reason"),
              std::string::npos);
    EXPECT_NE(text.find("## disk (1 events)"), std::string::npos);
    EXPECT_NE(text.find("## note (1 events)"), std::string::npos);
    EXPECT_NE(text.find("something went sideways"), std::string::npos);
}

TEST(FlightRecorder, DumpToFileFailsGracefully)
{
    const FlightRecorder recorder;
    EXPECT_FALSE(recorder.dumpToFile(
        "/nonexistent-dir/definitely/missing/pm.txt", "r"));
}

TEST(FlightRecorder, TapsRecordOnlyCollectorWithoutStoring)
{
    FlightRecorder recorder;
    trace::TraceCollector collector;
    collector.setSink(&recorder);
    collector.setRecordOnly(true);
    collector.instant(1, 1, "net", "fetch", 10);
    collector.span(1, 1, "disk", "read", 10, 20);
    collector.counter(1, "cache", "dirty", 30, 42.0);
    // Record-only: the collector stores nothing, the sink sees all.
    EXPECT_EQ(collector.size(), 0u);
    EXPECT_EQ(recorder.recorded(), 3u);
}

TEST(FlightRecorderDeathTest, PanicHookDumpsPostmortem)
{
    EXPECT_DEATH(
        {
            FlightRecorder recorder;
            recorder.record(diskEvent(7));
            setPanicHook([&recorder](const std::string &message) {
                recorder.note("panic: " + message);
                recorder.dump(std::cerr, message);
            });
            panic("boom %d", 7);
        },
        "doppio flight recorder");
}

// ----------------------------------------------- chaos postmortem

TEST(ChaosPostmortem, CleanRunWritesNothing)
{
    chaos::ChaosOptions options;
    options.seed = 7; // known-good seed (InvariantsHoldOnFixedSeeds)
    options.faultsPerMinute = 2.0;
    options.postmortemPath =
        ::testing::TempDir() + "doppio_chaos_clean_pm.txt";
    std::remove(options.postmortemPath.c_str());
    const chaos::ChaosVerdict verdict =
        chaos::checkInvariants(options);
    EXPECT_TRUE(verdict.passed()) << verdict.failure;
    EXPECT_FALSE(std::ifstream(options.postmortemPath).good())
        << "clean verdict must not write a postmortem";
}

TEST(ChaosPostmortem, TrippedInvariantDumpsFlightRecorder)
{
    chaos::ChaosOptions options;
    options.seed = 3;
    options.faultsPerMinute = 4.0;

    // Size an event budget between the baseline and the faulty run:
    // the baseline completes, the faulty run (more events, it pays
    // for recovery) trips the watchdog — a deterministic invariant
    // failure.
    const chaos::ChaosRunResult baseline =
        chaos::runChaosRig(options, nullptr);
    ASSERT_TRUE(baseline.completed) << baseline.error;
    const faults::FaultSpec spec = chaos::generateSchedule(options);
    const chaos::ChaosRunResult faulty =
        chaos::runChaosRig(options, &spec);
    ASSERT_TRUE(faulty.completed) << faulty.error;
    ASSERT_LT(baseline.firedEvents, faulty.firedEvents);
    options.eventBudget =
        (baseline.firedEvents + faulty.firedEvents) / 2;

    options.postmortemPath =
        ::testing::TempDir() + "doppio_chaos_trip_pm.txt";
    std::remove(options.postmortemPath.c_str());
    const chaos::ChaosVerdict verdict =
        chaos::checkInvariants(options);
    EXPECT_FALSE(verdict.passed());
    EXPECT_NE(verdict.failure.find("faulty run failed"),
              std::string::npos)
        << verdict.failure;

    std::ifstream in(options.postmortemPath);
    ASSERT_TRUE(in.good()) << "invariant trip must dump a postmortem";
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    EXPECT_EQ(text.rfind("# doppio flight recorder\n", 0), 0u);
    EXPECT_NE(text.find("# reason: faulty run failed"),
              std::string::npos);
    EXPECT_NE(text.find("chaos invariant tripped (seed 3)"),
              std::string::npos);
    std::remove(options.postmortemPath.c_str());
}

// -------------------------------------------------------- bottleneck

trace::PhaseBreakdown
madeBreakdown(const std::string &stage, double wallSec, double compute,
              double read, double shuffle, double spill)
{
    trace::PhaseBreakdown b;
    b.stage = stage;
    b.start = 0;
    b.end = secondsToTicks(wallSec);
    b.compute = compute;
    b.read = read;
    b.shuffle = shuffle;
    b.spill = spill;
    b.idle = wallSec - compute - read - shuffle - spill;
    return b;
}

TEST(Bottleneck, FirstObservationSeedsEmaExactly)
{
    BottleneckDetector detector;
    const auto alerts = detector.observeStage(
        madeBreakdown("s", 10.0, 3.0, 6.0, 0.5, 0.0));
    const telemetry::StageShares &s = detector.stageShares().at("s");
    EXPECT_DOUBLE_EQ(s.read, 0.6);
    EXPECT_DOUBLE_EQ(s.compute, 0.3);
    EXPECT_DOUBLE_EQ(s.shuffle, 0.05);
    EXPECT_EQ(s.observations, 1u);
    // read share 0.6 >= 0.4 threshold: one ReadDominated alert.
    ASSERT_EQ(alerts.size(), 1u);
    EXPECT_EQ(alerts[0].kind, BottleneckAlert::Kind::ReadDominated);
    EXPECT_EQ(alerts[0].stage, "s");
    EXPECT_DOUBLE_EQ(alerts[0].share, 0.6);
    EXPECT_STREQ(alerts[0].kindName(), "read-dominated");
}

TEST(Bottleneck, ReAlertsOnlyWhenDominantCategoryChanges)
{
    BottleneckDetector detector;
    const trace::PhaseBreakdown readHeavy =
        madeBreakdown("s", 10.0, 2.0, 7.0, 0.0, 0.0);
    EXPECT_EQ(detector.observeStage(readHeavy).size(), 1u);
    // Same dominance again: suppressed by alertOnChangeOnly.
    EXPECT_EQ(detector.observeStage(readHeavy).size(), 0u);
    // Dominance flips to shuffle (EMA needs a couple of windows to
    // cross): re-alerts exactly once.
    const trace::PhaseBreakdown shuffleHeavy =
        madeBreakdown("s", 10.0, 1.0, 0.0, 9.0, 0.0);
    std::vector<BottleneckAlert> flipped;
    for (int i = 0; i < 4 && flipped.empty(); ++i)
        flipped = detector.observeStage(shuffleHeavy);
    ASSERT_EQ(flipped.size(), 1u);
    EXPECT_EQ(flipped[0].kind,
              BottleneckAlert::Kind::ShuffleDominated);
    EXPECT_EQ(detector.alerts().size(), 2u);
}

TEST(Bottleneck, SloBurnAlertsOnceUntilRecovery)
{
    BottleneckDetector detector;
    std::size_t burnAlerts = 0;
    // Every batch misses a 1s SLO: the burn EMA rises to 1 and the
    // alert fires exactly once.
    for (int i = 0; i < 6; ++i)
        burnAlerts += detector.observeBatch(2.0, 1.0).size();
    EXPECT_EQ(burnAlerts, 1u);
    EXPECT_GT(detector.burnRate(), 0.25);
    // Healthy batches bring the EMA back under threshold...
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(detector.observeBatch(0.1, 1.0).empty());
    EXPECT_LT(detector.burnRate(), 0.25);
    // ...after which a new burn re-alerts.
    burnAlerts = 0;
    for (int i = 0; i < 6; ++i)
        burnAlerts += detector.observeBatch(2.0, 1.0).size();
    EXPECT_EQ(burnAlerts, 1u);
}

TEST(Bottleneck, PublishWritesDetectorSeries)
{
    BottleneckDetector detector;
    detector.observeStage(madeBreakdown("s", 10.0, 2.0, 7.0, 0.0, 0.0));
    detector.observeBatch(2.0, 1.0);
    detector.observeBatch(2.0, 1.0);
    Registry registry;
    detector.publish(registry);
    const telemetry::Counter *reads = registry.findCounter(
        "doppio_bottleneck_alerts_total", {{"kind", "read-dominated"}});
    ASSERT_NE(reads, nullptr);
    EXPECT_EQ(reads->value(), 1u);
    // Kinds without alerts are published zero-filled.
    const telemetry::Counter *spills = registry.findCounter(
        "doppio_bottleneck_alerts_total",
        {{"kind", "spill-dominated"}});
    ASSERT_NE(spills, nullptr);
    EXPECT_EQ(spills->value(), 0u);
    const telemetry::Gauge *share = registry.findGauge(
        "doppio_bottleneck_stage_share",
        {{"stage", "s"}, {"phase", "read"}});
    ASSERT_NE(share, nullptr);
    EXPECT_DOUBLE_EQ(share->value(), 0.7);
    ASSERT_NE(registry.findGauge("doppio_streaming_slo_burn_rate"),
              nullptr);
}

/**
 * The acceptance cross-check: on the fig06 synthetic stage the online
 * detector's streamed shares must reconcile with the offline
 * PhaseReport within 1%. With EMA seeding the first observation is
 * exact, so the two agree bit-for-bit here; the 1% tolerance guards
 * the contract, not the arithmetic.
 */
TEST(Bottleneck, ReconcilesWithOfflinePhaseReportOnFig06)
{
    storage::DiskParams disk;
    disk.model = "fig6-disk";
    disk.type = storage::DiskType::Ssd;
    disk.readIops = 1.0e6;
    disk.writeIops = 1.0e6;
    disk.readLatency = usToTicks(10.0);
    disk.writeLatency = usToTicks(10.0);
    disk.readBandwidth = mibps(120.0);
    disk.writeBandwidth = mibps(120.0);

    sim::Simulator sim;
    cluster::ClusterConfig config;
    config.numSlaves = 1;
    config.node.cores = 12;
    config.node.hdfsDisk = disk;
    config.node.localDisk = disk;
    config.taskJitterSigma = 0.25;
    cluster::Cluster cluster(sim, config);
    dfs::Hdfs hdfs(cluster);
    spark::SparkConf conf;
    conf.executorCores = 8;
    conf.taskDispatchOverheadSec = 0.0;
    conf.aggregateIo = false;
    spark::TaskEngine engine(cluster, hdfs, conf);

    trace::TraceCollector collector;
    cluster.setTraceCollector(&collector);
    engine.setTraceCollector(&collector);

    const Bytes task_bytes = mib(60);
    spark::StageSpec stage;
    stage.name = "fig6";
    spark::IoPhaseSpec io;
    io.op = storage::IoOp::PersistRead;
    io.bytesPerTask = task_bytes;
    io.requestSize = mib(1);
    io.cpuPerByte = 0.5 / static_cast<double>(task_bytes);
    stage.groups.push_back(spark::TaskGroupSpec{
        "g", 96, {io, spark::ComputePhaseSpec{3.0}}, task_bytes});
    engine.runStage(stage);

    const trace::PhaseReport report =
        trace::PhaseReport::build(collector, conf.executorCores);
    ASSERT_EQ(report.stages.size(), 1u);
    const trace::PhaseBreakdown &offline = report.stages[0];
    const double wall = offline.wall();
    ASSERT_GT(wall, 0.0);

    BottleneckDetector detector;
    for (const trace::PhaseBreakdown &b : report.stages)
        detector.observeStage(b);
    const telemetry::StageShares &online =
        detector.stageShares().at("fig6");
    EXPECT_NEAR(online.read, offline.read / wall, 0.01);
    EXPECT_NEAR(online.compute, offline.compute / wall, 0.01);
    EXPECT_NEAR(online.idle, offline.idle / wall, 0.01);
    EXPECT_NEAR(online.shuffle, offline.shuffle / wall, 0.01);
}

// ----------------------------------------------------------- service

service::ServiceConfig
serviceConfig()
{
    service::ServiceConfig config;
    config.planner.seed = 7;
    return config;
}

TEST(ServiceMetrics, CmdMetricsReturnsExpositionEnvelope)
{
    service::PlanningService svc(serviceConfig());
    const std::vector<std::string> transcript = svc.runScript({
        "{\"id\":\"q\",\"workload\":\"lr-small\",\"at_ms\":0}",
        "{\"cmd\":\"metrics\",\"at_ms\":50000}",
    });
    const std::string *metrics = nullptr;
    for (const std::string &line : transcript)
        if (line.rfind("{\"families\":", 0) == 0)
            metrics = &line;
    ASSERT_NE(metrics, nullptr) << "no metrics envelope in transcript";
    EXPECT_NE(metrics->find("\"series\":"), std::string::npos);
    EXPECT_NE(metrics->find("\"exposition\":\""), std::string::npos);
    EXPECT_NE(metrics->find("doppio_service_requests_total"),
              std::string::npos);
}

TEST(ServiceMetrics, PublishMetricsMirrorsStats)
{
    service::PlanningService svc(serviceConfig());
    svc.runScript({
        "{\"id\":\"cold\",\"workload\":\"lr-small\",\"at_ms\":0}",
        "{\"id\":\"warm\",\"workload\":\"lr-small\",\"at_ms\":50000}",
    });
    const service::ServiceStats stats = svc.stats();
    Registry registry;
    svc.publishMetrics(registry);
    const telemetry::Counter *requests =
        registry.findCounter("doppio_service_requests_total");
    ASSERT_NE(requests, nullptr);
    EXPECT_EQ(requests->value(), stats.received);
    const telemetry::Counter *hits =
        registry.findCounter("doppio_service_cache_hits_total");
    ASSERT_NE(hits, nullptr);
    EXPECT_EQ(hits->value(), stats.cacheHits);
    const telemetry::Gauge *ratio =
        registry.findGauge("doppio_service_cache_hit_ratio");
    ASSERT_NE(ratio, nullptr);
    EXPECT_DOUBLE_EQ(ratio->value(), stats.cacheHitRatio);
}

TEST(ServiceMetrics, StatsCarryCacheRatioAndBreakerResidency)
{
    service::PlanningService svc(serviceConfig());
    svc.runScript({
        "{\"id\":\"cold\",\"workload\":\"lr-small\",\"at_ms\":0}",
        "{\"id\":\"warm\",\"workload\":\"lr-small\",\"at_ms\":50000}",
    });
    const service::ServiceStats stats = svc.stats();
    // One cold miss, one identical warm hit.
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_DOUBLE_EQ(stats.cacheHitRatio, 0.5);
    // The breaker never opened: all residency is Closed.
    EXPECT_GT(stats.breakerClosedMs, 0.0);
    EXPECT_DOUBLE_EQ(stats.breakerOpenMs, 0.0);
    EXPECT_DOUBLE_EQ(stats.breakerHalfOpenMs, 0.0);
    // The JSON view carries the new fields.
    const std::string json = svc.statsJson();
    EXPECT_NE(json.find("\"cache_hit_ratio\":"), std::string::npos);
    EXPECT_NE(json.find("\"breaker_closed_ms\":"), std::string::npos);
}

TEST(ServiceFlightRecorder, BreakerOpenDumpsPostmortem)
{
    const std::string path =
        ::testing::TempDir() + "doppio_service_pm.txt";
    std::remove(path.c_str());

    // A 1ms latency threshold guarantees the first slow path trips
    // the breaker (an lr-small profile costs ~11.8k virtual ms).
    service::ServiceConfig config = serviceConfig();
    config.breaker.latencyThresholdMs = 1.0;
    service::PlanningService svc(config);
    FlightRecorder recorder;
    svc.setFlightRecorder(&recorder, path);
    svc.runScript(
        {"{\"id\":\"q\",\"workload\":\"lr-small\",\"at_ms\":0}"});
    EXPECT_GT(svc.breaker().trips(), 0u);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "breaker open must dump a postmortem";
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_NE(buffer.str().find("# reason: breaker-open"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(ServiceFlightRecorder, HealthyRunWritesNothing)
{
    const std::string path =
        ::testing::TempDir() + "doppio_service_healthy_pm.txt";
    std::remove(path.c_str());
    service::PlanningService svc(serviceConfig());
    FlightRecorder recorder;
    svc.setFlightRecorder(&recorder, path);
    svc.runScript(
        {"{\"id\":\"q\",\"workload\":\"lr-small\",\"at_ms\":0}"});
    EXPECT_EQ(svc.breaker().trips(), 0u);
    EXPECT_FALSE(std::ifstream(path).good())
        << "healthy run must not write a postmortem";
}

} // namespace
} // namespace doppio
