/**
 * @file
 * Tests for straggler injection and speculative execution.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "dfs/hdfs.h"
#include "sim/simulator.h"
#include "spark/task_engine.h"

namespace doppio::spark {
namespace {

/** Run a compute-only stage and return its makespan in seconds. */
double
runStage(double stragglerProbability, bool speculation,
         int tasks = 144, double taskSeconds = 10.0)
{
    sim::Simulator sim;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    config.taskJitterSigma = 0.02;
    config.stragglerProbability = stragglerProbability;
    config.stragglerSlowdown = 8.0;
    cluster::Cluster cluster(sim, config);
    dfs::Hdfs hdfs(cluster);
    SparkConf conf;
    conf.executorCores = 12;
    conf.speculation = speculation;
    TaskEngine engine(cluster, hdfs, conf);
    StageSpec stage;
    stage.name = "compute";
    stage.groups.push_back(TaskGroupSpec{
        "g", tasks, {ComputePhaseSpec{taskSeconds}}, 0});
    return engine.runStage(stage).seconds();
}

TEST(Speculation, NoStragglersBaseline)
{
    // 144 tasks / 36 cores = 4 waves of ~10 s.
    const double seconds = runStage(0.0, false);
    EXPECT_NEAR(seconds, 40.0, 3.0);
}

TEST(Speculation, StragglersInflateMakespan)
{
    // An 8x straggler in the last wave stretches the stage toward
    // 30 + 80 seconds.
    const double without = runStage(0.05, false);
    EXPECT_GT(without, 55.0);
}

TEST(Speculation, SpeculationRecoversMostOfTheLoss)
{
    const double baseline = runStage(0.0, false);
    const double with_stragglers = runStage(0.05, false);
    const double with_speculation = runStage(0.05, true);
    EXPECT_LT(with_speculation, with_stragglers);
    // Recovers at least half of the straggler-induced inflation.
    EXPECT_LT(with_speculation - baseline,
              0.5 * (with_stragglers - baseline));
}

TEST(Speculation, OffByDefault)
{
    const SparkConf conf;
    EXPECT_FALSE(conf.speculation);
}

TEST(Speculation, NoEffectWithoutStragglers)
{
    // With uniform tasks nothing exceeds the multiplier; speculation
    // must not distort a healthy stage.
    const double off = runStage(0.0, false);
    const double on = runStage(0.0, true);
    EXPECT_NEAR(on, off, off * 0.05);
}

TEST(Speculation, TaskCountIsExactDespiteExtraAttempts)
{
    sim::Simulator sim;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    config.stragglerProbability = 0.1;
    config.stragglerSlowdown = 10.0;
    cluster::Cluster cluster(sim, config);
    dfs::Hdfs hdfs(cluster);
    SparkConf conf;
    conf.executorCores = 12;
    conf.speculation = true;
    TaskEngine engine(cluster, hdfs, conf);
    StageSpec stage;
    stage.name = "compute";
    stage.groups.push_back(TaskGroupSpec{
        "g", 100, {ComputePhaseSpec{5.0}}, 0});
    const StageMetrics metrics = engine.runStage(stage);
    // Each logical task counted exactly once.
    EXPECT_EQ(metrics.taskDuration.count(), 100ULL);
}

/** Sweep straggler probabilities: speculation never hurts. */
class SpeculationSweep : public ::testing::TestWithParam<double>
{};

TEST_P(SpeculationSweep, NeverWorseThanNoSpeculation)
{
    const double p = GetParam();
    const double off = runStage(p, false);
    const double on = runStage(p, true);
    EXPECT_LE(on, off * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, SpeculationSweep,
                         ::testing::Values(0.0, 0.02, 0.05, 0.10));

} // namespace
} // namespace doppio::spark
