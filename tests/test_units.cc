/**
 * @file
 * Unit tests for byte/bandwidth units and formatting.
 */

#include <gtest/gtest.h>

#include "common/units.h"

namespace doppio {
namespace {

TEST(Units, BinaryConstants)
{
    EXPECT_EQ(kKiB, 1024ULL);
    EXPECT_EQ(kMiB, 1024ULL * 1024);
    EXPECT_EQ(kGiB, 1024ULL * 1024 * 1024);
    EXPECT_EQ(kTiB, 1024ULL * 1024 * 1024 * 1024);
}

TEST(Units, Constructors)
{
    EXPECT_EQ(kib(4), 4096ULL);
    EXPECT_EQ(mib(1), kMiB);
    EXPECT_EQ(gib(2), 2 * kGiB);
    EXPECT_EQ(tib(1), kTiB);
    EXPECT_EQ(kib(0.5), 512ULL);
}

TEST(Units, BandwidthConstructors)
{
    EXPECT_DOUBLE_EQ(mibps(480.0), 480.0 * 1024 * 1024);
    EXPECT_DOUBLE_EQ(gibps(1.25), 1.25 * 1024 * 1024 * 1024);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(toMiB(kMiB), 1.0);
    EXPECT_DOUBLE_EQ(toGiB(gib(334)), 334.0);
    EXPECT_DOUBLE_EQ(toMiBps(mibps(15.0)), 15.0);
    EXPECT_NEAR(toGiB(kMiB), 1.0 / 1024.0, 1e-12);
}

TEST(Units, FormatBytesPicksUnit)
{
    EXPECT_EQ(formatBytes(512), "512.0 B");
    EXPECT_EQ(formatBytes(kib(30)), "30.0 KB");
    EXPECT_EQ(formatBytes(mib(27)), "27.0 MB");
    EXPECT_EQ(formatBytes(gib(334)), "334.0 GB");
    EXPECT_EQ(formatBytes(tib(4)), "4.0 TB");
}

TEST(Units, FormatBytesRoundsToOneDecimal)
{
    EXPECT_EQ(formatBytes(kib(1.5)), "1.5 KB");
    EXPECT_EQ(formatBytes(1536 * kMiB), "1.5 GB");
}

TEST(Units, FormatBandwidth)
{
    EXPECT_EQ(formatBandwidth(mibps(480.0)), "480.0 MB/s");
    EXPECT_EQ(formatBandwidth(mibps(15.0)), "15.0 MB/s");
}

TEST(Units, RoundTripLargeSizes)
{
    // The paper's dataset sizes survive conversion.
    const Bytes shuffle = gib(334);
    EXPECT_DOUBLE_EQ(toGiB(shuffle), 334.0);
    const Bytes genome20eb = tib(1024) * 20000; // ~20 EB projection
    EXPECT_GT(genome20eb, shuffle);
}

} // namespace
} // namespace doppio
