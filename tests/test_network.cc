/**
 * @file
 * Unit tests for the cluster network model.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/units.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace doppio::net {
namespace {

TEST(Network, LocalTransferIsImmediate)
{
    sim::Simulator sim;
    Network net(sim, 2, 1000.0);
    Tick done = 0;
    net.transfer(0, 0, 1000000, [&] { done = sim.now(); });
    sim.run();
    EXPECT_EQ(done, 0ULL);
    EXPECT_EQ(net.remoteBytes(), 0ULL);
}

TEST(Network, RemoteTransferLimitedByNic)
{
    sim::Simulator sim;
    Network net(sim, 2, 1000.0, 0); // 1000 B/s, no latency
    Tick done = 0;
    net.transfer(0, 1, 2000, [&] { done = sim.now(); });
    sim.run();
    EXPECT_NEAR(ticksToSeconds(done), 2.0, 1e-6);
    EXPECT_EQ(net.remoteBytes(), 2000ULL);
}

TEST(Network, FixedLatencyApplied)
{
    sim::Simulator sim;
    Network net(sim, 2, 1e9, msToTicks(1.0));
    Tick done = 0;
    net.transfer(0, 1, 1, [&] { done = sim.now(); });
    sim.run();
    EXPECT_GE(done, msToTicks(1.0));
}

TEST(Network, IngressContention)
{
    // Two senders into the same receiver share its NIC.
    sim::Simulator sim;
    Network net(sim, 3, 1000.0, 0);
    Tick a = 0, b = 0;
    net.transfer(0, 2, 1000, [&] { a = sim.now(); });
    net.transfer(1, 2, 1000, [&] { b = sim.now(); });
    sim.run();
    EXPECT_NEAR(ticksToSeconds(a), 2.0, 1e-6);
    EXPECT_NEAR(ticksToSeconds(b), 2.0, 1e-6);
}

TEST(Network, SeparateReceiversDoNotContend)
{
    sim::Simulator sim;
    Network net(sim, 3, 1000.0, 0);
    Tick a = 0, b = 0;
    net.transfer(0, 1, 1000, [&] { a = sim.now(); });
    net.transfer(0, 2, 1000, [&] { b = sim.now(); });
    sim.run();
    // Receiver-side model: both proceed at full rate.
    EXPECT_NEAR(ticksToSeconds(a), 1.0, 1e-6);
    EXPECT_NEAR(ticksToSeconds(b), 1.0, 1e-6);
}

TEST(Network, ZeroByteTransferImmediate)
{
    sim::Simulator sim;
    Network net(sim, 2, 1000.0);
    bool done = false;
    net.transfer(0, 1, 0, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
}

TEST(Network, InvalidNodesFatal)
{
    sim::Simulator sim;
    Network net(sim, 2, 1000.0);
    EXPECT_THROW(net.transfer(-1, 0, 1, [] {}), FatalError);
    EXPECT_THROW(net.transfer(0, 2, 1, [] {}), FatalError);
}

TEST(Network, InvalidConfigFatal)
{
    sim::Simulator sim;
    EXPECT_THROW(Network(sim, 0, 1000.0), FatalError);
    EXPECT_THROW(Network(sim, 2, 0.0), FatalError);
}

TEST(Network, TenGbpsIsNotTheBottleneckForShuffle)
{
    // Paper §III-B1: a 10 Gb/s NIC outruns even the SSD shuffle rate.
    sim::Simulator sim;
    Network net(sim, 2, gibps(10.0 / 8.0), 0);
    Tick done = 0;
    net.transfer(0, 1, gib(1), [&] { done = sim.now(); });
    sim.run();
    // 1 GiB at 1.25 GiB/s: 0.8 s, far below the ~2.1 s an SSD needs.
    EXPECT_NEAR(ticksToSeconds(done), 0.8, 0.01);
}

} // namespace
} // namespace doppio::net
