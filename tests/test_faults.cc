/**
 * @file
 * Tests for the fault-injection subsystem and end-to-end recovery:
 * spec parsing, cluster liveness, task retries with maxFailures,
 * fetch-failure stage reattempts, node loss mid-shuffle with HDFS
 * failover, and the determinism / no-fault pass-through invariants.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "dfs/hdfs.h"
#include "faults/fault_injector.h"
#include "faults/fault_spec.h"
#include "sim/simulator.h"
#include "spark/metrics_json.h"
#include "spark/spark_context.h"
#include "spark/task_engine.h"
#include "workloads/registry.h"

namespace doppio {
namespace {

using faults::FaultInjector;
using faults::FaultSpec;
using faults::NodeEvent;

// ---------------------------------------------------------------- spec

TEST(FaultSpec, ParsesRatesAndSchedule)
{
    const FaultSpec spec = FaultSpec::parse(
        "task-fail-rate 0.02\n"
        "disk-error-rate 0.001   # transient local errors\n"
        "fetch-fail-rate 0.0005; kill 2@120\n"
        "rejoin 2@600\n"
        "degrade 1@60 4.0\n");
    EXPECT_DOUBLE_EQ(spec.taskFailureRate, 0.02);
    EXPECT_DOUBLE_EQ(spec.diskReadErrorRate, 0.001);
    EXPECT_DOUBLE_EQ(spec.shuffleFetchFailureRate, 0.0005);
    ASSERT_EQ(spec.schedule.size(), 3u);
    const auto &events = spec.schedule.events();
    EXPECT_EQ(events[0].kind, NodeEvent::Kind::Degrade);
    EXPECT_EQ(events[0].node, 1);
    EXPECT_DOUBLE_EQ(events[0].atSeconds, 60.0);
    EXPECT_DOUBLE_EQ(events[0].factor, 4.0);
    EXPECT_EQ(events[1].kind, NodeEvent::Kind::Kill);
    EXPECT_EQ(events[1].node, 2);
    EXPECT_DOUBLE_EQ(events[1].atSeconds, 120.0);
    EXPECT_EQ(events[2].kind, NodeEvent::Kind::Rejoin);
    EXPECT_TRUE(spec.any());
}

TEST(FaultSpec, EmptySpecIsInactive)
{
    EXPECT_FALSE(FaultSpec{}.any());
    EXPECT_FALSE(FaultSpec::parse("  # only a comment\n").any());
}

TEST(FaultSpec, RejectsMalformedInput)
{
    EXPECT_THROW(FaultSpec::parse("bogus 1"), FatalError);
    EXPECT_THROW(FaultSpec::parse("task-fail-rate"), FatalError);
    EXPECT_THROW(FaultSpec::parse("kill 2"), FatalError);
    EXPECT_THROW(FaultSpec::parse("kill x@10"), FatalError);
    EXPECT_THROW(FaultSpec::parse("task-fail-rate 1.5").validate(),
                 FatalError);
    EXPECT_THROW(FaultSpec::parse("degrade 0@10 0.5").validate(),
                 FatalError);
}

TEST(FaultSpec, ParsesDegradeMem)
{
    const FaultSpec spec =
        FaultSpec::parse("degrade-mem 1@60 0.5\n");
    ASSERT_EQ(spec.schedule.size(), 1u);
    const NodeEvent &event = spec.schedule.events()[0];
    EXPECT_EQ(event.kind, NodeEvent::Kind::DegradeMem);
    EXPECT_EQ(event.node, 1);
    EXPECT_DOUBLE_EQ(event.atSeconds, 60.0);
    EXPECT_DOUBLE_EQ(event.factor, 0.5);
    EXPECT_STREQ(faults::nodeEventKindName(event.kind), "degrade-mem");
}

TEST(FaultSpec, EveryMalformedDirectiveFormIsRejected)
{
    // One case per syntactic failure mode of the DSL.
    EXPECT_THROW(FaultSpec::parse("kill 2@"), FatalError);        // empty time
    EXPECT_THROW(FaultSpec::parse("kill 2@abc"), FatalError);     // bad time
    EXPECT_THROW(FaultSpec::parse("rejoin 3"), FatalError);       // missing @
    EXPECT_THROW(FaultSpec::parse("degrade 1@60"), FatalError);   // no factor
    EXPECT_THROW(FaultSpec::parse("degrade-mem 1@60"), FatalError);
    EXPECT_THROW(FaultSpec::parse("degrade-mem 1@60 x"), FatalError);
    EXPECT_THROW(FaultSpec::parse("kill 2@120 junk"), FatalError); // trailing
    EXPECT_THROW(FaultSpec::parse("kill -1@120"), FatalError);     // bad node
    EXPECT_THROW(FaultSpec::parse("kill 2@-5"), FatalError);       // bad time
    EXPECT_THROW(FaultSpec::parse("disk-error-rate -0.1"), FatalError);
    EXPECT_THROW(FaultSpec::parse("fetch-fail-rate 1.0"), FatalError);
}

TEST(FaultSpec, RejectsOutOfRangeDegradeMemFraction)
{
    EXPECT_THROW(FaultSpec::parse("degrade-mem 1@60 0"), FatalError);
    EXPECT_THROW(FaultSpec::parse("degrade-mem 1@60 1.5"), FatalError);
    EXPECT_THROW(FaultSpec::parse("degrade-mem 1@60 -0.5"), FatalError);
    EXPECT_NO_THROW(FaultSpec::parse("degrade-mem 1@60 1"));
}

TEST(FaultSpec, RejectsDuplicateKillOfOneNodeAtOneTime)
{
    EXPECT_THROW(FaultSpec::parse("kill 2@120; kill 2@120"),
                 FatalError);
    // Different node or different time is legitimate.
    EXPECT_NO_THROW(FaultSpec::parse("kill 2@120; kill 1@120"));
    EXPECT_NO_THROW(
        FaultSpec::parse("kill 2@120; rejoin 2@300; kill 2@400"));
}

TEST(FaultInjectorTest, DegradeMemEventClampsTheNodePool)
{
    sim::Simulator sim;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    config.numSlaves = 2;
    cluster::Cluster cluster(sim, config);
    FaultInjector injector(
        FaultSpec::parse("degrade-mem 1@10 0.25"), 7);
    injector.arm(cluster);
    sim.run();
    EXPECT_DOUBLE_EQ(cluster.memoryFraction(0), 1.0);
    EXPECT_DOUBLE_EQ(cluster.memoryFraction(1), 0.25);
}

TEST(FaultInjectorTest, RatesGateRandomness)
{
    FaultSpec zero;
    FaultInjector injector(zero, 42);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(injector.drawTaskFailure());

    FaultSpec high;
    high.taskFailureRate = 0.99;
    FaultInjector often(high, 42);
    int crashed = 0;
    for (int i = 0; i < 100; ++i)
        crashed += often.drawTaskFailure() ? 1 : 0;
    EXPECT_GE(crashed, 90);
}

// ------------------------------------------------------------- cluster

TEST(ClusterLiveness, KillAndRejoinUpdateAliveSet)
{
    sim::Simulator sim;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    config.numSlaves = 4;
    cluster::Cluster cluster(sim, config);
    ASSERT_EQ(cluster.aliveCount(), 4);

    std::vector<std::pair<int, bool>> seen;
    cluster.addLivenessObserver(
        [&seen](int node, bool alive) { seen.emplace_back(node, alive); });

    cluster.setNodeAlive(2, false);
    EXPECT_EQ(cluster.aliveCount(), 3);
    EXPECT_FALSE(cluster.nodeAlive(2));
    EXPECT_EQ(cluster.aliveNodes(), (std::vector<int>{0, 1, 3}));

    cluster.setNodeAlive(2, false); // no-op, no second notification
    cluster.setNodeAlive(2, true);
    EXPECT_EQ(cluster.aliveCount(), 4);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], (std::pair<int, bool>{2, false}));
    EXPECT_EQ(seen[1], (std::pair<int, bool>{2, true}));
}

TEST(ClusterLiveness, RefusesToKillLastAliveNode)
{
    sim::Simulator sim;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    config.numSlaves = 2;
    cluster::Cluster cluster(sim, config);
    cluster.setNodeAlive(0, false);
    EXPECT_THROW(cluster.setNodeAlive(1, false), FatalError);
}

// --------------------------------------------------------- task engine

namespace engine_helpers {

struct EngineRig
{
    sim::Simulator sim;
    spark::SparkConf conf; // outlives the engine (held by reference)
    std::unique_ptr<cluster::Cluster> cluster;
    std::unique_ptr<dfs::Hdfs> hdfs;
    std::unique_ptr<spark::TaskEngine> engine;

    explicit EngineRig(bool speculation = false)
    {
        cluster::ClusterConfig config =
            cluster::ClusterConfig::motivationCluster();
        config.taskJitterSigma = 0.0;
        cluster = std::make_unique<cluster::Cluster>(sim, config);
        hdfs = std::make_unique<dfs::Hdfs>(*cluster);
        conf.executorCores = 12;
        conf.speculation = speculation;
        engine = std::make_unique<spark::TaskEngine>(*cluster, *hdfs,
                                                     conf);
    }
};

spark::StageSpec
computeStage(int tasks, double taskSeconds)
{
    spark::StageSpec stage;
    stage.name = "compute";
    stage.groups.push_back(spark::TaskGroupSpec{
        "g", tasks, {spark::ComputePhaseSpec{taskSeconds}}, 0});
    return stage;
}

} // namespace engine_helpers

using engine_helpers::computeStage;
using engine_helpers::EngineRig;

/**
 * Satellite regression: a stage whose groups are all empty returns
 * valid empty metrics immediately, without arming the speculation
 * timer (which used to tick once and advance the clock).
 */
TEST(TaskEngineFaults, ZeroTaskStageLeavesNoPendingEvents)
{
    EngineRig rig(/*speculation=*/true);
    spark::StageSpec stage = computeStage(0, 1.0);
    const spark::StageMetrics metrics = rig.engine->runStage(stage);
    EXPECT_EQ(metrics.numTasks, 0);
    EXPECT_EQ(metrics.taskDuration.count(), 0u);
    EXPECT_DOUBLE_EQ(metrics.seconds(), 0.0);
    EXPECT_EQ(rig.sim.now(), 0u);
    EXPECT_EQ(rig.sim.pendingEvents(), 0u);
}

TEST(TaskEngineFaults, CrashedTasksRetryUntilTheStageCompletes)
{
    const double clean =
        [] {
            EngineRig rig;
            return rig.engine->runStage(computeStage(144, 10.0))
                .seconds();
        }();

    EngineRig rig;
    FaultSpec spec;
    spec.taskFailureRate = 0.2;
    FaultInjector injector(spec, 7);
    rig.engine->setFaultInjector(&injector);
    const spark::StageMetrics metrics =
        rig.engine->runStage(computeStage(144, 10.0));
    EXPECT_EQ(metrics.taskDuration.count(), 144u);
    EXPECT_GT(metrics.faults.taskFailures, 0u);
    EXPECT_GT(metrics.faults.taskRetries, 0u);
    EXPECT_GT(metrics.faults.wastedTaskSeconds, 0.0);
    EXPECT_GT(metrics.seconds(), clean);
}

TEST(TaskEngineFaults, RuntimeGrowsWithTheFailureRate)
{
    double previous = -1.0;
    for (const double rate : {0.0, 0.15, 0.45}) {
        EngineRig rig;
        // High rates make rate^4 per-task application aborts likely;
        // this test measures the runtime trend, not the abort path.
        rig.conf.taskMaxFailures = 1000;
        FaultSpec spec;
        spec.taskFailureRate = rate;
        FaultInjector injector(spec, 7);
        rig.engine->setFaultInjector(&injector);
        const double seconds =
            rig.engine->runStage(computeStage(144, 10.0)).seconds();
        EXPECT_GT(seconds, previous);
        previous = seconds;
    }
}

TEST(TaskEngineFaults, TaskExceedingMaxFailuresAbortsTheApplication)
{
    EngineRig rig;
    FaultSpec spec;
    spec.taskFailureRate = 0.99; // nearly every attempt crashes
    FaultInjector injector(spec, 7);
    rig.engine->setFaultInjector(&injector);
    EXPECT_THROW(rig.engine->runStage(computeStage(16, 1.0)),
                 FatalError);
}

// -------------------------------------------------------- spark context

namespace context_helpers {

struct ContextRig
{
    sim::Simulator sim;
    std::unique_ptr<cluster::Cluster> cluster;
    std::unique_ptr<dfs::Hdfs> hdfs;
    std::unique_ptr<spark::SparkContext> context;

    explicit ContextRig(spark::SparkConf conf = spark::SparkConf{})
    {
        cluster::ClusterConfig config =
            cluster::ClusterConfig::motivationCluster();
        config.taskJitterSigma = 0.0;
        cluster = std::make_unique<cluster::Cluster>(sim, config);
        hdfs = std::make_unique<dfs::Hdfs>(*cluster);
        hdfs->addFile("input", gib(1));
        context = std::make_unique<spark::SparkContext>(*cluster,
                                                        *hdfs, conf);
    }

    std::string
    runShuffleJob()
    {
        spark::RddRef input = context->hadoopFile("input");
        spark::ShuffleSpec shuffle;
        shuffle.bytes = gib(2);
        spark::RddRef grouped = spark::Rdd::shuffled(
            "grouped", input, 16, gib(2), shuffle);
        context->runJob("job", grouped, spark::ActionSpec::count());
        return spark::metricsJson(context->metrics());
    }
};

} // namespace context_helpers

using context_helpers::ContextRig;

/**
 * Attaching an injector whose rates are all zero must not perturb the
 * simulation at all: same events, same clock, same JSON.
 */
TEST(SparkContextFaults, ZeroRateInjectorIsPassThrough)
{
    ContextRig plain;
    const std::string without = plain.runShuffleJob();

    ContextRig rig;
    FaultSpec zero;
    FaultInjector injector(zero, 99);
    rig.context->setFaultInjector(&injector);
    const std::string with = rig.runShuffleJob();

    EXPECT_EQ(without, with);
}

TEST(SparkContextFaults, FetchFailureTriggersStageReattempt)
{
    // A spontaneous fetch failure re-fails reattempts with the same
    // probability (the sources stay alive), so give the stage plenty
    // of attempts and keep the per-batch rate low.
    spark::SparkConf conf;
    conf.stageMaxAttempts = 50;
    ContextRig rig(conf);
    FaultSpec spec;
    spec.shuffleFetchFailureRate = 0.05;
    FaultInjector injector(spec, 3);
    rig.context->setFaultInjector(&injector);
    rig.runShuffleJob();

    const spark::AppMetrics &metrics = rig.context->metrics();
    ASSERT_EQ(metrics.jobs.size(), 1u);
    ASSERT_EQ(metrics.jobs[0].stages.size(), 2u);
    const spark::StageMetrics &reduce = metrics.jobs[0].stages[1];
    EXPECT_GT(reduce.faults.fetchFailures, 0u);
    EXPECT_GE(reduce.faults.stageReattempts, 1u);
    EXPECT_GT(reduce.faults.recoverySeconds, 0.0);
    // The merged entry covers the reattempts: every partition finished.
    EXPECT_GE(reduce.taskDuration.count(),
              static_cast<std::uint64_t>(reduce.numTasks));
    EXPECT_EQ(reduce.fetchFailedSource, -1);
}

// ------------------------------------------------------- end to end

namespace {

spark::AppMetrics
runTerasort(const FaultSpec *spec)
{
    const auto workload = workloads::makeWorkload("terasort");
    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    config.numSlaves = 3;
    spark::SparkConf conf;
    conf.executorCores = 8;
    return workload->run(config, conf, nullptr, spec);
}

} // namespace

/**
 * Kill a node in the middle of the shuffle-read stage: in-flight
 * attempts are lost, the next fetch against the dead node aborts the
 * stage, the lost map outputs are recomputed from lineage, HDFS reads
 * fail over to surviving replicas, and the run still completes.
 */
TEST(EndToEndFaults, NodeLossMidShuffleRecovers)
{
    const spark::AppMetrics clean = runTerasort(nullptr);
    EXPECT_FALSE(clean.faultsPresent);
    const auto stages = clean.allStages();
    ASSERT_EQ(stages.size(), 2u);
    // Early in the reduce stage's window, while tasks are still
    // launching and fetching (the tail of the window is the async
    // HDFS output-write backlog draining, with no fetches left).
    const double killAt =
        ticksToSeconds(stages[1]->startTick) +
        0.1 * ticksToSeconds(stages[1]->endTick -
                             stages[1]->startTick);

    FaultSpec spec;
    NodeEvent kill;
    kill.kind = NodeEvent::Kind::Kill;
    kill.node = 1;
    kill.atSeconds = killAt;
    spec.schedule.add(kill);

    const spark::AppMetrics faulty = runTerasort(&spec);
    ASSERT_TRUE(faulty.faultsPresent);
    EXPECT_GT(faulty.faults.lostAttempts, 0u);
    EXPECT_GT(faulty.faults.fetchFailures, 0u);
    EXPECT_GE(faulty.faults.stageReattempts, 1u);
    EXPECT_GT(faulty.faults.hdfsFailovers, 0u);
    EXPECT_GT(faulty.faults.reReplicatedBytes, 0u);
    EXPECT_GT(faulty.faults.recoverySeconds, 0.0);
    // Losing a third of the cluster mid-shuffle must cost time.
    EXPECT_GT(faulty.seconds(), clean.seconds());
    // All partitions of both stages completed despite the loss.
    for (const spark::StageMetrics *stage : faulty.allStages())
        EXPECT_GE(stage->taskDuration.count(),
                  static_cast<std::uint64_t>(stage->numTasks));
}

/** Same seed + same schedule => byte-identical metrics JSON. */
TEST(EndToEndFaults, FaultRunsAreDeterministic)
{
    FaultSpec spec;
    spec.taskFailureRate = 0.02;
    NodeEvent kill;
    kill.kind = NodeEvent::Kind::Kill;
    kill.node = 2;
    kill.atSeconds = 120.0;
    spec.schedule.add(kill);

    const std::string first =
        spark::metricsJson(runTerasort(&spec));
    const std::string second =
        spark::metricsJson(runTerasort(&spec));
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("\"faults\""), std::string::npos);
}

// --------------------------------------- gray-failure DSL directives

TEST(FaultSpecGray, ParsesPartitionAndHeal)
{
    const FaultSpec spec = FaultSpec::parse(
        "partition 0,1|2,3@120\n"
        "heal@180\n");
    ASSERT_EQ(spec.schedule.size(), 2u);
    const NodeEvent &split = spec.schedule.events()[0];
    EXPECT_EQ(split.kind, NodeEvent::Kind::Partition);
    EXPECT_DOUBLE_EQ(split.atSeconds, 120.0);
    EXPECT_EQ(split.groupA, (std::vector<int>{0, 1}));
    EXPECT_EQ(split.groupB, (std::vector<int>{2, 3}));
    const NodeEvent &heal = spec.schedule.events()[1];
    EXPECT_EQ(heal.kind, NodeEvent::Kind::Heal);
    EXPECT_DOUBLE_EQ(heal.atSeconds, 180.0);
}

TEST(FaultSpecGray, ParsesCorruptRateAndSlowNode)
{
    const FaultSpec spec = FaultSpec::parse(
        "corrupt-rate 0.001; slow-node 1@60 3.0");
    EXPECT_DOUBLE_EQ(spec.hdfsCorruptRate, 0.001);
    ASSERT_EQ(spec.schedule.size(), 1u);
    const NodeEvent &gray = spec.schedule.events()[0];
    EXPECT_EQ(gray.kind, NodeEvent::Kind::SlowNode);
    EXPECT_EQ(gray.node, 1);
    EXPECT_DOUBLE_EQ(gray.factor, 3.0);
    EXPECT_STREQ(faults::nodeEventKindName(gray.kind), "slow-node");
}

TEST(FaultSpecGray, RejectsMalformedPartitions)
{
    EXPECT_THROW(FaultSpec::parse("partition 0,1@120"), FatalError);
    EXPECT_THROW(FaultSpec::parse("partition |2,3@120"), FatalError);
    EXPECT_THROW(FaultSpec::parse("partition 0,1|@120"), FatalError);
    EXPECT_THROW(FaultSpec::parse("partition 0,1|1,2@120"),
                 FatalError);
    EXPECT_THROW(FaultSpec::parse("slow-node 1@60 0.5"), FatalError);
    EXPECT_THROW(FaultSpec::parse("corrupt-rate 1.0"), FatalError);
}

/** A rejoin of a never-killed node is a spec typo, not a no-op. */
TEST(FaultSpecGray, RejectsRejoinWithoutPriorKill)
{
    EXPECT_THROW(FaultSpec::parse("rejoin 2@600"), FatalError);
    // Wrong order in time also counts: the rejoin fires first.
    EXPECT_THROW(FaultSpec::parse("kill 2@600; rejoin 2@120"),
                 FatalError);
    EXPECT_NO_THROW(FaultSpec::parse("kill 2@120; rejoin 2@600"));
}

TEST(FaultSpecGray, RejectsHealWithoutPriorPartition)
{
    EXPECT_THROW(FaultSpec::parse("heal@180"), FatalError);
    EXPECT_NO_THROW(
        FaultSpec::parse("partition 0|1,2@120; heal@180"));
}

/** Parse errors name the input and line of the offending statement. */
TEST(FaultSpecGray, ErrorsCarrySourceAndLineNumber)
{
    try {
        FaultSpec::parse("task-fail-rate 0.01\nkill x@10\n",
                         "myspec");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("myspec:2"),
                  std::string::npos)
            << e.what();
    }
    try {
        FaultSpec::parse("kill 2@120\nrejoin 3@600\n", "myspec");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("myspec:2"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace doppio
