/**
 * @file
 * Unit tests for the fair-shared fluid pipe.
 */

#include <cstdint>
#include <functional>
#include <limits>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/units.h"
#include "sim/fluid_pipe.h"
#include "sim/simulator.h"

namespace doppio::sim {
namespace {

TEST(FluidPipe, SingleFlowDuration)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p"); // 100 B/s
    Tick done_at = 0;
    pipe.startFlow(200, [&] { done_at = sim.now(); });
    sim.run();
    EXPECT_NEAR(ticksToSeconds(done_at), 2.0, 1e-6);
}

TEST(FluidPipe, TwoFlowsShareFairly)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    Tick a = 0, b = 0;
    pipe.startFlow(100, [&] { a = sim.now(); });
    pipe.startFlow(100, [&] { b = sim.now(); });
    sim.run();
    // Each gets 50 B/s: both finish at t=2.
    EXPECT_NEAR(ticksToSeconds(a), 2.0, 1e-6);
    EXPECT_NEAR(ticksToSeconds(b), 2.0, 1e-6);
}

TEST(FluidPipe, ShortFlowReleasesBandwidth)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    Tick small = 0, large = 0;
    pipe.startFlow(50, [&] { small = sim.now(); });
    pipe.startFlow(150, [&] { large = sim.now(); });
    sim.run();
    // Phase 1: both at 50 B/s until the small one finishes at t=1.
    // Phase 2: large has 100 B/s for its remaining 100 B -> t=2.
    EXPECT_NEAR(ticksToSeconds(small), 1.0, 1e-6);
    EXPECT_NEAR(ticksToSeconds(large), 2.0, 1e-6);
}

TEST(FluidPipe, LateArrivalSlowsExisting)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    Tick first = 0;
    pipe.startFlow(150, [&] { first = sim.now(); });
    sim.schedule(secondsToTicks(1.0), [&] {
        pipe.startFlow(1000, [] {});
    });
    sim.run();
    // 100 B in the first second, then 50 B/s: finishes at t=2.
    EXPECT_NEAR(ticksToSeconds(first), 2.0, 1e-6);
}

TEST(FluidPipe, PerFlowRateCapHonored)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    Tick done = 0;
    pipe.startFlow(100, [&] { done = sim.now(); }, 10.0);
    sim.run();
    EXPECT_NEAR(ticksToSeconds(done), 10.0, 1e-6);
}

TEST(FluidPipe, ProgressiveFillingRedistributes)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    Tick capped = 0, uncapped = 0;
    // Capped flow takes 20 B/s; the other should get the other 80.
    pipe.startFlow(20, [&] { capped = sim.now(); }, 20.0);
    pipe.startFlow(80, [&] { uncapped = sim.now(); });
    sim.run();
    EXPECT_NEAR(ticksToSeconds(capped), 1.0, 1e-6);
    EXPECT_NEAR(ticksToSeconds(uncapped), 1.0, 1e-6);
}

TEST(FluidPipe, ZeroByteFlowCompletesImmediately)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    bool done = false;
    pipe.startFlow(0, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sim.now(), 0ULL);
}

TEST(FluidPipe, CompletionCallbackCanStartNewFlow)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    Tick done = 0;
    pipe.startFlow(100, [&] {
        pipe.startFlow(100, [&] { done = sim.now(); });
    });
    sim.run();
    EXPECT_NEAR(ticksToSeconds(done), 2.0, 1e-6);
}

TEST(FluidPipe, BytesCompletedAccumulates)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    pipe.startFlow(100, [] {});
    pipe.startFlow(50, [] {});
    sim.run();
    EXPECT_EQ(pipe.bytesCompleted(), 150ULL);
}

TEST(FluidPipe, BusyTimeTracksActivity)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    pipe.startFlow(100, [] {});
    sim.run();
    EXPECT_NEAR(ticksToSeconds(pipe.busyTime()), 1.0, 1e-6);
    // Idle gap then another flow.
    sim.schedule(secondsToTicks(5.0), [&] {
        pipe.startFlow(100, [] {});
    });
    sim.run();
    EXPECT_NEAR(ticksToSeconds(pipe.busyTime()), 2.0, 1e-6);
}

TEST(FluidPipe, SetCapacityAffectsInFlight)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    Tick done = 0;
    pipe.startFlow(200, [&] { done = sim.now(); });
    sim.schedule(secondsToTicks(1.0), [&] { pipe.setCapacity(50.0); });
    sim.run();
    // 100 B in second 1, then 100 B at 50 B/s: t=3.
    EXPECT_NEAR(ticksToSeconds(done), 3.0, 1e-6);
}

TEST(FluidPipe, InvalidConfigIsFatal)
{
    Simulator sim;
    EXPECT_THROW(FluidPipe(sim, 0.0, "bad"), FatalError);
    FluidPipe pipe(sim, 1.0, "p");
    EXPECT_THROW(pipe.startFlow(1, [] {}, 0.0), FatalError);
    EXPECT_THROW(pipe.setCapacity(-1.0), FatalError);
}

TEST(FluidPipe, ConservationAcrossManyFlows)
{
    // Work conservation: total time to drain k flows of b bytes is
    // k*b/capacity regardless of arrival pattern while backlogged.
    Simulator sim;
    FluidPipe pipe(sim, 1000.0, "p");
    int completed = 0;
    for (int i = 0; i < 20; ++i)
        pipe.startFlow(500, [&] { ++completed; });
    const Tick end = sim.run();
    EXPECT_EQ(completed, 20);
    EXPECT_NEAR(ticksToSeconds(end), 20 * 500 / 1000.0, 1e-3);
}

/** Fair share property over varying flow counts. */
class FluidPipeFairness : public ::testing::TestWithParam<int>
{};

TEST_P(FluidPipeFairness, EqualFlowsFinishTogether)
{
    const int n = GetParam();
    Simulator sim;
    FluidPipe pipe(sim, 1e6, "p");
    std::vector<Tick> done(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        pipe.startFlow(1000, [&, i] {
            done[static_cast<std::size_t>(i)] = sim.now();
        });
    sim.run();
    const double expected = n * 1000 / 1e6;
    for (Tick t : done)
        EXPECT_NEAR(ticksToSeconds(t), expected, expected * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FluidPipeFairness,
                         ::testing::Values(1, 2, 3, 7, 16, 64));

/**
 * Reference progressive-filling solver: the pre-§11 algorithm that
 * copies the flow list into a temporary vector and ERASES each capped
 * entry (O(n^2)). The production rebalance marks entries instead; the
 * two must agree bit-for-bit on every rate, because the round-global
 * fair share, the visit order and the budget subtraction order are
 * identical — only the container bookkeeping differs.
 */
std::vector<double>
referenceFill(double capacity, const std::vector<double> &caps)
{
    struct Entry
    {
        double cap;
        std::size_t index;
    };
    std::vector<double> rates(caps.size(), 0.0);
    std::vector<Entry> pending;
    for (std::size_t i = 0; i < caps.size(); ++i)
        pending.push_back({caps[i], i});
    double budget = capacity;
    bool changed = true;
    while (!pending.empty() && changed) {
        changed = false;
        const double fair =
            budget / static_cast<double>(pending.size());
        for (auto it = pending.begin(); it != pending.end();) {
            if (it->cap <= fair) {
                rates[it->index] = it->cap;
                budget -= it->cap;
                it = pending.erase(it);
                changed = true;
            } else {
                ++it;
            }
        }
    }
    if (!pending.empty()) {
        const double fair =
            budget / static_cast<double>(pending.size());
        for (const Entry &entry : pending)
            rates[entry.index] = fair;
    }
    return rates;
}

/** The production marking algorithm, lifted verbatim over plain data. */
std::vector<double>
markingFill(double capacity, const std::vector<double> &caps)
{
    std::vector<double> rates(caps.size(), 0.0);
    std::vector<const double *> scratch;
    scratch.reserve(caps.size());
    for (const double &cap : caps)
        scratch.push_back(&cap);
    double budget = capacity;
    std::size_t unallocated = scratch.size();
    bool changed = true;
    while (unallocated > 0 && changed) {
        changed = false;
        const double fair =
            budget / static_cast<double>(unallocated);
        for (const double *&entry : scratch) {
            if (entry == nullptr)
                continue;
            if (*entry <= fair) {
                rates[static_cast<std::size_t>(entry - caps.data())] =
                    *entry;
                budget -= *entry;
                entry = nullptr;
                --unallocated;
                changed = true;
            }
        }
    }
    if (unallocated > 0) {
        const double fair =
            budget / static_cast<double>(unallocated);
        for (const double *entry : scratch) {
            if (entry != nullptr)
                rates[static_cast<std::size_t>(entry - caps.data())] =
                    fair;
        }
    }
    return rates;
}

TEST(FluidPipe, MarkingFillMatchesEraseFillBitForBit)
{
    std::mt19937_64 rng(0xF10D5u);
    for (int round = 0; round < 200; ++round) {
        const std::size_t n = 1 + rng() % 5000;
        std::vector<double> caps(n);
        for (double &cap : caps) {
            // Mix tight caps, loose caps and uncapped flows.
            const std::uint64_t kind = rng() % 3;
            if (kind == 0)
                cap = std::numeric_limits<double>::infinity();
            else if (kind == 1)
                cap = 1.0 + static_cast<double>(rng() % 1000);
            else
                cap = 1e5 + static_cast<double>(rng() % 100000);
        }
        const double capacity =
            1e5 + static_cast<double>(rng() % 1000000);
        const std::vector<double> expected =
            referenceFill(capacity, caps);
        const std::vector<double> actual = markingFill(capacity, caps);
        ASSERT_EQ(actual.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            // Bit-for-bit, not approximately: memcmp via ==.
            ASSERT_EQ(actual[i], expected[i])
                << "round " << round << " flow " << i;
        }
    }
}

/**
 * Determinism stress (DESIGN.md §11): 5000 concurrent flows with
 * random sizes and caps, churned through completions. Two identical
 * pipes driven by identical schedules must produce identical
 * completion tick sequences, and conservation must hold.
 */
TEST(FluidPipe, FiveThousandFlowStressIsDeterministic)
{
    auto run = [](std::vector<std::pair<Tick, Bytes>> *out) {
        Simulator sim;
        FluidPipe pipe(sim, 1e9, "stress");
        std::mt19937_64 rng(0x5EEDu);
        std::uint64_t started = 0;
        std::function<void()> completion;
        Bytes total_bytes = 0;
        auto launch = [&] {
            const Bytes bytes = 100 * 1000 + rng() % 2000000;
            const double cap =
                (rng() % 4 == 0)
                    ? 1e6 + static_cast<double>(rng() % 1000000)
                    : std::numeric_limits<double>::infinity();
            total_bytes += bytes;
            ++started;
            pipe.startFlow(bytes, completion, cap);
        };
        completion = [&] {
            out->emplace_back(sim.now(), pipe.bytesCompleted());
            if (started < 7000)
                launch();
        };
        for (int i = 0; i < 5000; ++i)
            launch();
        sim.run();
        return total_bytes;
    };
    std::vector<std::pair<Tick, Bytes>> first, second;
    const Bytes bytes_a = run(&first);
    const Bytes bytes_b = run(&second);
    EXPECT_EQ(bytes_a, bytes_b);
    EXPECT_EQ(first.size(), 7000u);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_EQ(first[i].first, second[i].first) << "completion " << i;
        ASSERT_EQ(first[i].second, second[i].second)
            << "completion " << i;
    }
}

} // namespace
} // namespace doppio::sim
