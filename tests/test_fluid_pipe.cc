/**
 * @file
 * Unit tests for the fair-shared fluid pipe.
 */

#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/units.h"
#include "sim/fluid_pipe.h"
#include "sim/simulator.h"

namespace doppio::sim {
namespace {

TEST(FluidPipe, SingleFlowDuration)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p"); // 100 B/s
    Tick done_at = 0;
    pipe.startFlow(200, [&] { done_at = sim.now(); });
    sim.run();
    EXPECT_NEAR(ticksToSeconds(done_at), 2.0, 1e-6);
}

TEST(FluidPipe, TwoFlowsShareFairly)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    Tick a = 0, b = 0;
    pipe.startFlow(100, [&] { a = sim.now(); });
    pipe.startFlow(100, [&] { b = sim.now(); });
    sim.run();
    // Each gets 50 B/s: both finish at t=2.
    EXPECT_NEAR(ticksToSeconds(a), 2.0, 1e-6);
    EXPECT_NEAR(ticksToSeconds(b), 2.0, 1e-6);
}

TEST(FluidPipe, ShortFlowReleasesBandwidth)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    Tick small = 0, large = 0;
    pipe.startFlow(50, [&] { small = sim.now(); });
    pipe.startFlow(150, [&] { large = sim.now(); });
    sim.run();
    // Phase 1: both at 50 B/s until the small one finishes at t=1.
    // Phase 2: large has 100 B/s for its remaining 100 B -> t=2.
    EXPECT_NEAR(ticksToSeconds(small), 1.0, 1e-6);
    EXPECT_NEAR(ticksToSeconds(large), 2.0, 1e-6);
}

TEST(FluidPipe, LateArrivalSlowsExisting)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    Tick first = 0;
    pipe.startFlow(150, [&] { first = sim.now(); });
    sim.schedule(secondsToTicks(1.0), [&] {
        pipe.startFlow(1000, [] {});
    });
    sim.run();
    // 100 B in the first second, then 50 B/s: finishes at t=2.
    EXPECT_NEAR(ticksToSeconds(first), 2.0, 1e-6);
}

TEST(FluidPipe, PerFlowRateCapHonored)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    Tick done = 0;
    pipe.startFlow(100, [&] { done = sim.now(); }, 10.0);
    sim.run();
    EXPECT_NEAR(ticksToSeconds(done), 10.0, 1e-6);
}

TEST(FluidPipe, ProgressiveFillingRedistributes)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    Tick capped = 0, uncapped = 0;
    // Capped flow takes 20 B/s; the other should get the other 80.
    pipe.startFlow(20, [&] { capped = sim.now(); }, 20.0);
    pipe.startFlow(80, [&] { uncapped = sim.now(); });
    sim.run();
    EXPECT_NEAR(ticksToSeconds(capped), 1.0, 1e-6);
    EXPECT_NEAR(ticksToSeconds(uncapped), 1.0, 1e-6);
}

TEST(FluidPipe, ZeroByteFlowCompletesImmediately)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    bool done = false;
    pipe.startFlow(0, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sim.now(), 0ULL);
}

TEST(FluidPipe, CompletionCallbackCanStartNewFlow)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    Tick done = 0;
    pipe.startFlow(100, [&] {
        pipe.startFlow(100, [&] { done = sim.now(); });
    });
    sim.run();
    EXPECT_NEAR(ticksToSeconds(done), 2.0, 1e-6);
}

TEST(FluidPipe, BytesCompletedAccumulates)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    pipe.startFlow(100, [] {});
    pipe.startFlow(50, [] {});
    sim.run();
    EXPECT_EQ(pipe.bytesCompleted(), 150ULL);
}

TEST(FluidPipe, BusyTimeTracksActivity)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    pipe.startFlow(100, [] {});
    sim.run();
    EXPECT_NEAR(ticksToSeconds(pipe.busyTime()), 1.0, 1e-6);
    // Idle gap then another flow.
    sim.schedule(secondsToTicks(5.0), [&] {
        pipe.startFlow(100, [] {});
    });
    sim.run();
    EXPECT_NEAR(ticksToSeconds(pipe.busyTime()), 2.0, 1e-6);
}

TEST(FluidPipe, SetCapacityAffectsInFlight)
{
    Simulator sim;
    FluidPipe pipe(sim, 100.0, "p");
    Tick done = 0;
    pipe.startFlow(200, [&] { done = sim.now(); });
    sim.schedule(secondsToTicks(1.0), [&] { pipe.setCapacity(50.0); });
    sim.run();
    // 100 B in second 1, then 100 B at 50 B/s: t=3.
    EXPECT_NEAR(ticksToSeconds(done), 3.0, 1e-6);
}

TEST(FluidPipe, InvalidConfigIsFatal)
{
    Simulator sim;
    EXPECT_THROW(FluidPipe(sim, 0.0, "bad"), FatalError);
    FluidPipe pipe(sim, 1.0, "p");
    EXPECT_THROW(pipe.startFlow(1, [] {}, 0.0), FatalError);
    EXPECT_THROW(pipe.setCapacity(-1.0), FatalError);
}

TEST(FluidPipe, ConservationAcrossManyFlows)
{
    // Work conservation: total time to drain k flows of b bytes is
    // k*b/capacity regardless of arrival pattern while backlogged.
    Simulator sim;
    FluidPipe pipe(sim, 1000.0, "p");
    int completed = 0;
    for (int i = 0; i < 20; ++i)
        pipe.startFlow(500, [&] { ++completed; });
    const Tick end = sim.run();
    EXPECT_EQ(completed, 20);
    EXPECT_NEAR(ticksToSeconds(end), 20 * 500 / 1000.0, 1e-3);
}

/** Fair share property over varying flow counts. */
class FluidPipeFairness : public ::testing::TestWithParam<int>
{};

TEST_P(FluidPipeFairness, EqualFlowsFinishTogether)
{
    const int n = GetParam();
    Simulator sim;
    FluidPipe pipe(sim, 1e6, "p");
    std::vector<Tick> done(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        pipe.startFlow(1000, [&, i] {
            done[static_cast<std::size_t>(i)] = sim.now();
        });
    sim.run();
    const double expected = n * 1000 / 1e6;
    for (Tick t : done)
        EXPECT_NEAR(ticksToSeconds(t), expected, expected * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FluidPipeFairness,
                         ::testing::Values(1, 2, 3, 7, 16, 64));

} // namespace
} // namespace doppio::sim
