/**
 * @file
 * Unit tests for model report rendering.
 */

#include <gtest/gtest.h>

#include "model/report.h"

namespace doppio::model {
namespace {

AppModel
sampleApp()
{
    AppModel app;
    app.name = "SampleApp";
    StageModel stage;
    stage.name = "BR";
    stage.tasks = 12000;
    stage.tAvg = 9.0;
    stage.deltaScale = 4.0;
    IoComponent read;
    read.op = storage::IoOp::ShuffleRead;
    read.bytes = gib(334);
    read.requestSize = 30000.0;
    read.soloPhaseSecondsPerTask = 0.45;
    stage.io.push_back(read);
    app.stages.push_back(stage);
    return app;
}

PlatformProfile
profile()
{
    return PlatformProfile::fromDisks(storage::makeSsdParams(),
                                      storage::makeSsdParams());
}

TEST(Report, ContainsStageTableAndTotal)
{
    const std::string report = reportString(sampleApp(), profile());
    EXPECT_NE(report.find("SampleApp"), std::string::npos);
    EXPECT_NE(report.find("BR"), std::string::npos);
    EXPECT_NE(report.find("t_app"), std::string::npos);
    EXPECT_NE(report.find("Equation 1"), std::string::npos);
}

TEST(Report, ContainsIoComponents)
{
    const std::string report = reportString(sampleApp(), profile());
    EXPECT_NE(report.find("shuffle_read"), std::string::npos);
    EXPECT_NE(report.find("334.0 GB"), std::string::npos);
    EXPECT_NE(report.find("29.3 KB"), std::string::npos);
}

TEST(Report, AnalysisSectionOptional)
{
    ReportOptions with;
    with.includeAnalysis = true;
    ReportOptions without;
    without.includeAnalysis = false;
    const std::string a = reportString(sampleApp(), profile(), with);
    const std::string b =
        reportString(sampleApp(), profile(), without);
    EXPECT_NE(a.find("Breakpoint analysis"), std::string::npos);
    EXPECT_EQ(b.find("Breakpoint analysis"), std::string::npos);
    EXPECT_LT(b.size(), a.size());
}

TEST(Report, ReflectsConfiguration)
{
    ReportOptions options;
    options.numNodes = 7;
    options.cores = 13;
    const std::string report =
        reportString(sampleApp(), profile(), options);
    EXPECT_NE(report.find("N=7"), std::string::npos);
    EXPECT_NE(report.find("P=13"), std::string::npos);
}

} // namespace
} // namespace doppio::model
