/**
 * @file
 * Tests for the multi-tenant scheduling subsystem (src/sched/):
 * fairness invariants (FAIR shares converge to pool weights, FIFO
 * preserves submission order, minShare is honored before the weighted
 * split), the jobs-spec grammar, sweep-parallelism byte-identity, and
 * fault recovery scoped to the affected tenant when multiple jobs are
 * in flight.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "dfs/hdfs.h"
#include "faults/fault_injector.h"
#include "faults/fault_spec.h"
#include "sched/job_scheduler.h"
#include "sched/jobs_spec.h"
#include "sim/simulator.h"
#include "workloads/multi_tenant.h"

namespace doppio {
namespace {

using sched::JobContext;
using sched::JobScheduler;
using sched::MultiJobSpec;
using sched::PoolConfig;
using spark::ActionSpec;
using spark::Rdd;
using spark::RddRef;

/**
 * Shared-cluster harness: 3 slaves at 8 executor cores (24 cluster
 * cores), 1 MiB HDFS blocks so small files still yield many tasks.
 */
struct Harness
{
    sim::Simulator simulator;
    cluster::ClusterConfig config;
    std::unique_ptr<cluster::Cluster> cluster;
    std::unique_ptr<dfs::Hdfs> hdfs;
    std::unique_ptr<JobScheduler> scheduler;

    explicit Harness(int cores = 8)
    {
        config = cluster::ClusterConfig::evaluationCluster();
        config.numSlaves = 3;
        cluster = std::make_unique<cluster::Cluster>(simulator, config);
        dfs::HdfsConfig hdfsConfig;
        hdfsConfig.blockSize = kMiB;
        hdfs = std::make_unique<dfs::Hdfs>(*cluster, hdfsConfig);
        spark::SparkConf conf;
        conf.executorCores = cores;
        scheduler =
            std::make_unique<JobScheduler>(*cluster, *hdfs, conf);
    }

    /** CPU-bound job over @p file: one task per 1 MiB block. */
    void
    submitCpuJob(JobContext &context, const std::string &file,
                 double cpuPerTask)
    {
        RddRef input = context.hadoopFile(file);
        RddRef work = Rdd::narrow(file + ".work", {input}, input->bytes);
        work->cpuPerTask = cpuPerTask;
        JobContext::JobRequest request;
        request.name = file + ".job";
        request.target = work;
        request.action = ActionSpec::count();
        context.submitJob(std::move(request));
    }

    /** Sample both tenants' running tasks at @p seconds. */
    void
    probe(double seconds, std::vector<std::pair<int, int>> &samples)
    {
        simulator.scheduleAt(secondsToTicks(seconds), [this, &samples] {
            samples.emplace_back(scheduler->runningTasks(0),
                                 scheduler->runningTasks(1));
        });
    }
};

// ------------------------------------------------------ fairness

/**
 * Two saturating tenants in FAIR pools of weight 3 and 1 must split
 * the 24 cluster cores 18:6 — within 5% of the weight ratio — once
 * the shares settle.
 */
TEST(Fairness, FairSharesConvergeToWeights)
{
    Harness h;
    PoolConfig heavy;
    heavy.name = "heavy";
    heavy.fair = true;
    heavy.weight = 3.0;
    h.scheduler->definePool(heavy);
    PoolConfig light;
    light.name = "light";
    light.fair = true;
    light.weight = 1.0;
    h.scheduler->definePool(light);

    h.hdfs->addFile("a", 400 * kMiB);
    h.hdfs->addFile("b", 400 * kMiB);
    JobContext &ta = h.scheduler->addTenant("ta", "heavy");
    JobContext &tb = h.scheduler->addTenant("tb", "light");
    h.submitCpuJob(ta, "a", 5.0);
    h.submitCpuJob(tb, "b", 5.0);

    std::vector<std::pair<int, int>> samples;
    for (double t : {21.3, 42.7, 63.1, 84.9})
        h.probe(t, samples);
    h.scheduler->run();

    ASSERT_EQ(samples.size(), 4u);
    for (const auto &[a, b] : samples) {
        EXPECT_EQ(a + b, 24) << "cluster not saturated";
        const double share =
            static_cast<double>(a) / static_cast<double>(a + b);
        EXPECT_NEAR(share, 0.75, 0.05)
            << "weight-3 tenant held " << a << " of " << (a + b);
    }
}

/**
 * A pool's minShare is satisfied before the weighted split: a
 * weight-1/minShare-8 pool keeps 8 cores against a weight-10 rival.
 */
TEST(Fairness, MinShareBeforeWeightedSplit)
{
    Harness h;
    PoolConfig big;
    big.name = "big";
    big.fair = true;
    big.weight = 10.0;
    h.scheduler->definePool(big);
    PoolConfig small;
    small.name = "small";
    small.fair = true;
    small.weight = 1.0;
    small.minShare = 8;
    h.scheduler->definePool(small);

    h.hdfs->addFile("a", 400 * kMiB);
    h.hdfs->addFile("b", 400 * kMiB);
    JobContext &ta = h.scheduler->addTenant("ta", "big");
    JobContext &tb = h.scheduler->addTenant("tb", "small");
    h.submitCpuJob(ta, "a", 5.0);
    h.submitCpuJob(tb, "b", 5.0);

    std::vector<std::pair<int, int>> samples;
    for (double t : {21.3, 42.7, 63.1})
        h.probe(t, samples);
    h.scheduler->run();

    ASSERT_EQ(samples.size(), 3u);
    for (const auto &[a, b] : samples) {
        EXPECT_EQ(a + b, 24);
        // Pure weighted split would leave ~2 cores; minShare floors
        // the pool at 8.
        EXPECT_GE(b, 8) << "minShare violated: " << b << " cores";
    }
}

/**
 * A FIFO pool serves tenants in submission order: while the first
 * tenant has runnable tasks it holds every core, and it finishes
 * first.
 */
TEST(Fairness, FifoPreservesSubmissionOrder)
{
    Harness h;
    h.hdfs->addFile("a", 100 * kMiB);
    h.hdfs->addFile("b", 100 * kMiB);
    JobContext &t0 = h.scheduler->addTenant("t0"); // default FIFO pool
    JobContext &t1 = h.scheduler->addTenant("t1");
    h.submitCpuJob(t0, "a", 5.0);
    h.submitCpuJob(t1, "b", 5.0);

    std::vector<std::pair<int, int>> samples;
    h.probe(2.0, samples);
    h.scheduler->run();

    ASSERT_EQ(samples.size(), 1u);
    EXPECT_EQ(samples[0].first, 24)
        << "head-of-queue tenant must hold every core";
    EXPECT_EQ(samples[0].second, 0)
        << "second tenant scheduled while the first had runnable work";
    EXPECT_EQ(t0.jobsCompleted(), 1);
    EXPECT_EQ(t1.jobsCompleted(), 1);
    EXPECT_LT(t0.doneTick(), t1.doneTick());
}

// ------------------------------------------------------ jobs spec

TEST(JobsSpec, ParsesPoolsAndTenants)
{
    const MultiJobSpec spec = MultiJobSpec::parse(
        "# comment\n"
        "pool prod fair weight=3 minshare=4\n"
        "pool batch fifo\n"
        "job lr-small pool=prod\n"
        "job terasort pool=batch start=5\n"
        "stream lr rate=0.5 batches=12 backlog=3 slo=20 poisson "
        "batch-mib=32 pool=prod\n");
    ASSERT_EQ(spec.pools.size(), 2u);
    EXPECT_EQ(spec.pools[0].name, "prod");
    EXPECT_TRUE(spec.pools[0].fair);
    EXPECT_DOUBLE_EQ(spec.pools[0].weight, 3.0);
    EXPECT_EQ(spec.pools[0].minShare, 4);
    EXPECT_FALSE(spec.pools[1].fair);
    ASSERT_EQ(spec.tenants.size(), 3u);
    EXPECT_EQ(spec.tenants[0].kind, sched::TenantSpec::Kind::Batch);
    EXPECT_EQ(spec.tenants[0].workload, "lr-small");
    EXPECT_DOUBLE_EQ(spec.tenants[1].startSec, 5.0);
    const sched::TenantSpec &stream = spec.tenants[2];
    EXPECT_EQ(stream.kind, sched::TenantSpec::Kind::Stream);
    EXPECT_DOUBLE_EQ(stream.stream.ratePerSec, 0.5);
    EXPECT_EQ(stream.stream.batches, 12);
    EXPECT_EQ(stream.stream.maxBacklog, 3);
    EXPECT_DOUBLE_EQ(stream.stream.sloSeconds, 20.0);
    EXPECT_TRUE(stream.stream.poisson);
    EXPECT_EQ(stream.batchBytes, 32 * kMiB);
}

TEST(JobsSpec, RejectsMalformedInput)
{
    EXPECT_THROW(MultiJobSpec::parse("frob x"), FatalError);
    EXPECT_THROW(MultiJobSpec::parse("pool p sorta"), FatalError);
    EXPECT_THROW(MultiJobSpec::parse("pool p fair weight=0"),
                 FatalError);
    EXPECT_THROW(MultiJobSpec::parse("job lr-small rate=1"),
                 FatalError);
    // A spec with no tenants has nothing to run.
    EXPECT_THROW(MultiJobSpec::parse("pool p fair\n"), FatalError);
}

// ------------------------------------------------ sweep byte-identity

/**
 * Sweeping multi-tenant runs through SweepRunner must be
 * byte-identical for any --jobs value: each point is an independent
 * simulation, results commit in input order.
 */
TEST(MultiTenantSweep, JobsParallelismIsByteIdentical)
{
    auto render = [](std::size_t i) {
        MultiJobSpec spec;
        PoolConfig pool;
        pool.name = "stream";
        pool.fair = true;
        spec.pools.push_back(pool);
        sched::TenantSpec tenant;
        tenant.kind = sched::TenantSpec::Kind::Stream;
        tenant.workload = "lr";
        tenant.pool = "stream";
        tenant.stream.ratePerSec = 0.25 + 0.25 * static_cast<double>(i);
        tenant.stream.batches = 4;
        spec.tenants.push_back(tenant);

        cluster::ClusterConfig config =
            cluster::ClusterConfig::evaluationCluster();
        config.numSlaves = 2;
        spark::SparkConf conf;
        conf.executorCores = 8;
        const workloads::MultiTenantResult result =
            workloads::runMultiTenant(spec, config, conf);
        std::ostringstream os;
        workloads::writeMultiTenantJson(os, result);
        return os.str();
    };

    const common::SweepRunner serial(1);
    const common::SweepRunner parallel(2);
    const std::vector<std::string> a = serial.map(3, render);
    const std::vector<std::string> b = parallel.map(3, render);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "sweep point " << i;
}

// ------------------------------------------------------ faults

/** Sum of a tenant's per-stage fault counters. */
spark::FaultMetrics
tenantFaults(const JobContext &context)
{
    spark::FaultMetrics total;
    for (const spark::StageMetrics *stage :
         context.appMetrics().allStages())
        total += stage->faults;
    return total;
}

/**
 * Node kill with two jobs in flight: the tenant whose shuffle lost
 * map outputs pays fetch-failure recovery; the narrow-only tenant
 * loses at most its in-flight attempts and never reruns a stage.
 */
TEST(MultiTenantFaults, NodeKillOnlyRerunsAffectedTenantsWork)
{
    // Clean pass to find when tenant B's reduce stage is in flight.
    Tick reduceStart = 0;
    Tick reduceEnd = 0;
    Tick cpuEnd = 0;
    auto build = [](Harness &h, faults::FaultInjector *injector) {
        PoolConfig pa;
        pa.name = "a";
        pa.fair = true;
        h.scheduler->definePool(pa);
        PoolConfig pb;
        pb.name = "b";
        pb.fair = true;
        h.scheduler->definePool(pb);
        if (injector != nullptr) {
            h.scheduler->setFaultInjector(injector);
            injector->arm(*h.cluster);
        }
        h.hdfs->addFile("cpu.in", 200 * kMiB);
        h.hdfs->addFile("shuffle.in", 48 * kMiB);
        JobContext &ta = h.scheduler->addTenant("ta", "a");
        JobContext &tb = h.scheduler->addTenant("tb", "b");
        h.submitCpuJob(ta, "cpu.in", 8.0);

        RddRef input = tb.hadoopFile("shuffle.in");
        spark::ShuffleSpec shuffle;
        shuffle.bytes = 48 * kMiB;
        RddRef reduced = Rdd::shuffled("reduced", input, 12,
                                       48 * kMiB, shuffle);
        // Long reduce tasks so a mid-reduce kill finds fetches and
        // running work to lose.
        reduced->cpuPerInputByte = 2.5e-6;
        JobContext::JobRequest request;
        request.name = "shuffle.job";
        request.target = reduced;
        request.action = ActionSpec::count();
        tb.submitJob(std::move(request));
        return std::pair<JobContext *, JobContext *>{&ta, &tb};
    };

    {
        Harness h;
        auto [ta, tb] = build(h, nullptr);
        h.scheduler->run();
        const auto &job = tb->appMetrics().jobs.front();
        ASSERT_EQ(job.stages.size(), 2u);
        reduceStart = job.stages[1].startTick;
        reduceEnd = job.stages[1].endTick;
        cpuEnd = ta->doneTick();
    }
    const double killAt =
        ticksToSeconds(reduceStart) +
        0.2 * ticksToSeconds(reduceEnd - reduceStart);
    // The narrow tenant must still be mid-job at the kill, or the
    // test would not have two jobs in flight.
    ASSERT_LT(killAt, ticksToSeconds(cpuEnd));

    Harness h;
    faults::FaultSpec spec;
    faults::NodeEvent kill;
    kill.kind = faults::NodeEvent::Kind::Kill;
    kill.node = 1;
    kill.atSeconds = killAt;
    spec.schedule.add(kill);
    faults::FaultInjector injector(spec, h.config.seed);
    auto [ta, tb] = build(h, &injector);
    h.scheduler->run();

    EXPECT_EQ(ta->jobsCompleted(), 1);
    EXPECT_EQ(tb->jobsCompleted(), 1);

    const spark::FaultMetrics fa = tenantFaults(*ta);
    const spark::FaultMetrics fb = tenantFaults(*tb);
    // B lost map outputs: fetch failure, stage reattempt, recovery.
    EXPECT_GT(fb.fetchFailures, 0u);
    EXPECT_GE(fb.stageReattempts, 1u);
    // A had no shuffle: it loses in-flight attempts on the dead node
    // and nothing else — no fetch failures, no stage reruns.
    EXPECT_GT(fa.lostAttempts, 0u);
    EXPECT_EQ(fa.fetchFailures, 0u);
    EXPECT_EQ(fa.stageReattempts, 0u);
    // Every partition of both tenants still completed.
    for (const spark::StageMetrics *stage :
         ta->appMetrics().allStages())
        EXPECT_GE(stage->taskDuration.count(),
                  static_cast<std::uint64_t>(stage->numTasks));
    for (const spark::StageMetrics *stage :
         tb->appMetrics().allStages())
        EXPECT_GE(stage->taskDuration.count(),
                  static_cast<std::uint64_t>(stage->numTasks));
}

} // namespace
} // namespace doppio
