/**
 * @file
 * Unit tests for the mechanistic disk device.
 */

#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/simulator.h"
#include "storage/disk_device.h"

namespace doppio::storage {
namespace {

/** A device with round numbers for exact checks. */
DiskParams
simpleParams()
{
    DiskParams p;
    p.model = "test";
    p.type = DiskType::Hdd;
    p.readIops = 100.0;  // 10 ms admission interval
    p.writeIops = 100.0;
    p.readLatency = msToTicks(10.0);
    p.writeLatency = msToTicks(10.0);
    p.readBandwidth = 1000.0 * kKiB; // 1000 KiB/s
    p.writeBandwidth = 500.0 * kKiB;
    return p;
}

TEST(DiskDevice, SingleReadLatencyPlusTransfer)
{
    sim::Simulator sim;
    DiskDevice dev(sim, simpleParams(), "d");
    Tick done = 0;
    dev.submit(IoOp::RawRead, 100 * kKiB, [&] { done = sim.now(); });
    sim.run();
    // 10 ms latency + 100/1000 s transfer.
    EXPECT_NEAR(ticksToSeconds(done), 0.010 + 0.100, 1e-4);
}

TEST(DiskDevice, WriteUsesWriteParameters)
{
    sim::Simulator sim;
    DiskDevice dev(sim, simpleParams(), "d");
    Tick done = 0;
    dev.submit(IoOp::RawWrite, 100 * kKiB, [&] { done = sim.now(); });
    sim.run();
    EXPECT_NEAR(ticksToSeconds(done), 0.010 + 0.200, 1e-4);
}

TEST(DiskDevice, ZeroByteRequestCompletesImmediately)
{
    sim::Simulator sim;
    DiskDevice dev(sim, simpleParams(), "d");
    bool done = false;
    dev.submit(IoOp::RawRead, 0, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
}

TEST(DiskDevice, AdmissionLimitsSmallRequestThroughput)
{
    // Many concurrent 1 KiB readers: aggregate ~= IOPS * 1 KiB, far
    // below the transfer bandwidth — the paper's shuffle-read regime.
    sim::Simulator sim;
    DiskDevice dev(sim, simpleParams(), "d");
    const int workers = 16;
    const int per_worker = 25;
    struct Worker
    {
        int remaining;
        std::function<void()> issue;
    };
    std::vector<std::unique_ptr<Worker>> pool;
    for (int w = 0; w < workers; ++w) {
        auto worker = std::make_unique<Worker>();
        worker->remaining = per_worker;
        Worker *raw = worker.get();
        worker->issue = [raw, &dev] {
            if (raw->remaining-- <= 0)
                return;
            dev.submit(IoOp::RawRead, kKiB, [raw] { raw->issue(); });
        };
        pool.push_back(std::move(worker));
    }
    for (auto &worker : pool)
        worker->issue();
    const Tick end = sim.run();
    const double seconds = ticksToSeconds(end);
    const double expected = workers * per_worker / 100.0; // IOPS bound
    EXPECT_NEAR(seconds, expected, expected * 0.1);
}

TEST(DiskDevice, LargeRequestsAreBandwidthLimited)
{
    sim::Simulator sim;
    DiskDevice dev(sim, simpleParams(), "d");
    int done = 0;
    for (int i = 0; i < 4; ++i)
        dev.submit(IoOp::RawRead, 1000 * kKiB, [&] { ++done; });
    const Tick end = sim.run();
    EXPECT_EQ(done, 4);
    // 4000 KiB through 1000 KiB/s.
    EXPECT_NEAR(ticksToSeconds(end), 4.0, 0.2);
}

TEST(DiskDevice, StatsRecordPerOp)
{
    sim::Simulator sim;
    DiskDevice dev(sim, simpleParams(), "d");
    dev.submit(IoOp::ShuffleRead, kib(30), [] {});
    dev.submit(IoOp::ShuffleRead, kib(30), [] {});
    dev.submit(IoOp::PersistWrite, kib(128), [] {});
    sim.run();
    EXPECT_EQ(dev.stats().forOp(IoOp::ShuffleRead).requests, 2ULL);
    EXPECT_EQ(dev.stats().forOp(IoOp::ShuffleRead).bytes, kib(60));
    EXPECT_NEAR(dev.stats().forOp(IoOp::ShuffleRead).avgRequestSize(),
                static_cast<double>(kib(30)), 1.0);
    EXPECT_EQ(dev.stats().totalBytes(IoKind::Write), kib(128));
    EXPECT_EQ(dev.stats().totalRequests(IoKind::Read), 2ULL);
}

TEST(DiskDevice, ResetStatsClears)
{
    sim::Simulator sim;
    DiskDevice dev(sim, simpleParams(), "d");
    dev.submit(IoOp::RawRead, kKiB, [] {});
    sim.run();
    dev.resetStats();
    EXPECT_EQ(dev.stats().totalRequests(IoKind::Read), 0ULL);
}

TEST(DiskDevice, BatchSoloMatchesSequentialSubmits)
{
    // A batch from one synchronous client must take the same time as
    // the per-request loop it aggregates.
    const Bytes chunk = 10 * kKiB;
    const std::uint64_t count = 50;

    sim::Simulator sim_seq;
    DiskDevice dev_seq(sim_seq, simpleParams(), "seq");
    struct Loop
    {
        DiskDevice *dev;
        Bytes chunk;
        std::uint64_t left;
        std::function<void()> issue;
    } loop{&dev_seq, chunk, count, {}};
    loop.issue = [&loop] {
        if (loop.left-- == 0)
            return;
        loop.dev->submit(IoOp::RawRead, loop.chunk,
                         [&loop] { loop.issue(); });
    };
    loop.issue();
    const double t_seq = ticksToSeconds(sim_seq.run());

    sim::Simulator sim_batch;
    DiskDevice dev_batch(sim_batch, simpleParams(), "batch");
    dev_batch.submitBatch(IoOp::RawRead, chunk, count, [] {});
    const double t_batch = ticksToSeconds(sim_batch.run());

    EXPECT_NEAR(t_batch, t_seq, t_seq * 0.05);
}

TEST(DiskDevice, BatchAggregateThroughputUnderContention)
{
    // Concurrent batches must respect the admission limit in aggregate
    // (work conservation of the token bucket).
    sim::Simulator sim;
    DiskDevice dev(sim, simpleParams(), "d");
    const int tasks = 8;
    const std::uint64_t count = 50;
    int done = 0;
    for (int t = 0; t < tasks; ++t)
        dev.submitBatch(IoOp::RawRead, kKiB, count, [&] { ++done; });
    const double seconds = ticksToSeconds(sim.run());
    EXPECT_EQ(done, tasks);
    const double expected = tasks * count / 100.0;
    EXPECT_NEAR(seconds, expected, expected * 0.1);
}

TEST(DiskDevice, BatchRecordsStats)
{
    sim::Simulator sim;
    DiskDevice dev(sim, simpleParams(), "d");
    dev.submitBatch(IoOp::ShuffleRead, kib(30), 100, [] {});
    sim.run();
    EXPECT_EQ(dev.stats().forOp(IoOp::ShuffleRead).requests, 100ULL);
    EXPECT_EQ(dev.stats().forOp(IoOp::ShuffleRead).bytes, kib(3000));
}

TEST(DiskDevice, BatchZeroCountImmediate)
{
    sim::Simulator sim;
    DiskDevice dev(sim, simpleParams(), "d");
    bool done = false;
    dev.submitBatch(IoOp::RawRead, kKiB, 0, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sim.now(), 0ULL);
}

TEST(DiskDevice, MixedReadWriteShareAdmission)
{
    // The token bucket (arm/controller) is shared between directions.
    sim::Simulator sim;
    DiskDevice dev(sim, simpleParams(), "d");
    int done = 0;
    for (int i = 0; i < 50; ++i) {
        dev.submit(IoOp::RawRead, kKiB, [&] { ++done; });
        dev.submit(IoOp::RawWrite, kKiB, [&] { ++done; });
    }
    const double seconds = ticksToSeconds(sim.run());
    EXPECT_EQ(done, 100);
    EXPECT_NEAR(seconds, 100 / 100.0, 0.15);
}

} // namespace
} // namespace doppio::storage
