/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace doppio {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(5.0, 9.0);
        EXPECT_GE(u, 5.0);
        EXPECT_LT(u, 9.0);
    }
}

TEST(Rng, UniformIntBounded)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(10), 10ULL);
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(15);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, JitterHasUnitMean)
{
    // Task-time jitter must not bias stage runtimes.
    Rng rng(17);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.jitter(0.1);
    EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, JitterZeroSigmaIsExactlyOne)
{
    Rng rng(19);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(rng.jitter(0.0), 1.0);
}

TEST(Rng, JitterAlwaysPositive)
{
    Rng rng(21);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.jitter(0.5), 0.0);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(23);
    Rng child = parent.fork();
    // The child stream must not replay the parent's outputs.
    Rng parent2(23);
    parent2.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (child.next() == parent.next())
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, ForkDeterministic)
{
    Rng a(25), b(25);
    Rng ca = a.fork(), cb = b.fork();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(ca.next(), cb.next());
}

} // namespace
} // namespace doppio
