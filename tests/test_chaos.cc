/**
 * @file
 * Tests for the chaos subsystem: the seeded schedule generator's
 * determinism and legality, the harness invariants on fixed seeds,
 * the simulator event-budget watchdog, checkpoint-bounded streaming
 * recovery, and the kill+rejoin regression under a multi-tenant run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "chaos/harness.h"
#include "chaos/schedule_generator.h"
#include "cluster/cluster_config.h"
#include "common/logging.h"
#include "faults/fault_spec.h"
#include "sched/jobs_spec.h"
#include "spark/spark_conf.h"
#include "workloads/multi_tenant.h"

namespace doppio {
namespace {

using chaos::ChaosOptions;
using faults::NodeEvent;

// ----------------------------------------------------------- generator

bool
sameEvent(const NodeEvent &a, const NodeEvent &b)
{
    return a.kind == b.kind && a.node == b.node &&
           a.atSeconds == b.atSeconds && a.factor == b.factor &&
           a.groupA == b.groupA && a.groupB == b.groupB;
}

TEST(ChaosGenerator, SameSeedYieldsTheSameSchedule)
{
    ChaosOptions options;
    options.seed = 42;
    options.faultsPerMinute = 4.0;
    const faults::FaultSpec a = chaos::generateSchedule(options);
    const faults::FaultSpec b = chaos::generateSchedule(options);
    EXPECT_DOUBLE_EQ(a.taskFailureRate, b.taskFailureRate);
    EXPECT_DOUBLE_EQ(a.hdfsCorruptRate, b.hdfsCorruptRate);
    ASSERT_EQ(a.schedule.size(), b.schedule.size());
    for (std::size_t i = 0; i < a.schedule.size(); ++i)
        EXPECT_TRUE(sameEvent(a.schedule.events()[i],
                              b.schedule.events()[i]))
            << "event " << i << " differs";
}

TEST(ChaosGenerator, DifferentSeedsYieldDifferentSchedules)
{
    ChaosOptions options;
    options.faultsPerMinute = 4.0;
    options.seed = 1;
    const faults::FaultSpec a = chaos::generateSchedule(options);
    options.seed = 2;
    const faults::FaultSpec b = chaos::generateSchedule(options);
    bool differ = a.schedule.size() != b.schedule.size() ||
                  a.taskFailureRate != b.taskFailureRate;
    for (std::size_t i = 0;
         !differ && i < a.schedule.size(); ++i)
        differ = !sameEvent(a.schedule.events()[i],
                            b.schedule.events()[i]);
    EXPECT_TRUE(differ);
}

TEST(ChaosGenerator, DensityScalesTheEventCount)
{
    ChaosOptions sparse, dense;
    sparse.seed = dense.seed = 5;
    sparse.faultsPerMinute = 0.5;
    dense.faultsPerMinute = 8.0;
    EXPECT_LT(chaos::generateSchedule(sparse).schedule.size(),
              chaos::generateSchedule(dense).schedule.size());
}

/**
 * Across many seeds, every generated schedule keeps at least two
 * nodes alive at all times, never stacks partitions, and (in
 * transient mode) ends with everything cured: all nodes back up, no
 * split in effect.
 */
TEST(ChaosGenerator, SchedulesStayLegalAcrossManySeeds)
{
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        ChaosOptions options;
        options.seed = seed;
        options.faultsPerMinute = 6.0;
        const faults::FaultSpec spec =
            chaos::generateSchedule(options); // validate() inside
        int alive = options.numSlaves;
        int partitions = 0;
        for (const NodeEvent &event : spec.schedule.events()) {
            switch (event.kind) {
              case NodeEvent::Kind::Kill:
                --alive;
                break;
              case NodeEvent::Kind::Rejoin:
                ++alive;
                break;
              case NodeEvent::Kind::Partition:
                ++partitions;
                break;
              case NodeEvent::Kind::Heal:
                --partitions;
                break;
              default:
                break;
            }
            ASSERT_GE(alive, 2) << "seed " << seed;
            ASSERT_LE(partitions, 1) << "seed " << seed;
            ASSERT_GE(partitions, 0) << "seed " << seed;
        }
        EXPECT_EQ(alive, options.numSlaves) << "seed " << seed;
        EXPECT_EQ(partitions, 0) << "seed " << seed;
    }
}

TEST(ChaosGenerator, RatesAreOmittedWhenDisabled)
{
    ChaosOptions options;
    options.withRates = false;
    const faults::FaultSpec spec = chaos::generateSchedule(options);
    EXPECT_DOUBLE_EQ(spec.taskFailureRate, 0.0);
    EXPECT_DOUBLE_EQ(spec.diskReadErrorRate, 0.0);
    EXPECT_DOUBLE_EQ(spec.hdfsCorruptRate, 0.0);
    EXPECT_DOUBLE_EQ(spec.shuffleFetchFailureRate, 0.0);
}

TEST(ChaosGenerator, RejectsDegenerateOptions)
{
    ChaosOptions one;
    one.numSlaves = 1;
    EXPECT_THROW(chaos::generateSchedule(one), FatalError);
    ChaosOptions flat;
    flat.horizonSec = 0.0;
    EXPECT_THROW(chaos::generateSchedule(flat), FatalError);
}

// ------------------------------------------------------------- harness

TEST(ChaosHarness, FaultFreeRigCompletes)
{
    const chaos::ChaosRunResult result =
        chaos::runChaosRig(ChaosOptions{}, nullptr);
    ASSERT_TRUE(result.completed) << result.error;
    EXPECT_GT(result.elapsedSec, 0.0);
    EXPECT_FALSE(result.json.empty());
    ASSERT_EQ(result.metrics.jobs.size(), 4u);
    EXPECT_EQ(result.metrics.jobs[0].name, "warmup");
    EXPECT_EQ(result.metrics.jobs[1].name, "agg");
    EXPECT_EQ(result.metrics.jobs[2].name, "snapshot");
    EXPECT_EQ(result.metrics.jobs[3].name, "readback");
    // The readback job consumes the checkpoint: its lineage is
    // truncated at "state", so it is a single narrow stage instead of
    // a recompute of the shuffle.
    EXPECT_EQ(result.metrics.jobs[3].stages.size(), 1u);
}

TEST(ChaosHarness, EventBudgetWatchdogTripsTinyBudgets)
{
    ChaosOptions options;
    options.eventBudget = 1000; // far below a full run
    const chaos::ChaosRunResult result =
        chaos::runChaosRig(options, nullptr);
    EXPECT_FALSE(result.completed);
    EXPECT_NE(result.error.find("event budget"), std::string::npos)
        << result.error;
    EXPECT_LE(result.firedEvents, options.eventBudget);
}

TEST(ChaosHarness, FaultyRunObservesInjectedFaults)
{
    ChaosOptions options;
    options.seed = 3;
    options.faultsPerMinute = 4.0;
    const faults::FaultSpec spec = chaos::generateSchedule(options);
    const chaos::ChaosRunResult result =
        chaos::runChaosRig(options, &spec);
    ASSERT_TRUE(result.completed) << result.error;
    EXPECT_TRUE(result.metrics.faultsPresent);
    EXPECT_TRUE(result.metrics.faults.any());
}

/**
 * A network split across the rig's shuffle window forces fetches and
 * HDFS reads to time out with backoff until the heal, and the run
 * still converges.
 */
TEST(ChaosHarness, PartitionCausesTimeoutsThenHeals)
{
    const faults::FaultSpec spec =
        faults::FaultSpec::parse("partition 0,1|2,3@10; heal@30");
    const chaos::ChaosRunResult result =
        chaos::runChaosRig(ChaosOptions{}, &spec);
    ASSERT_TRUE(result.completed) << result.error;
    EXPECT_GT(result.metrics.faults.partitionTimeouts, 0u);
}

/**
 * Silent corruption: checksum mismatches force re-reads from a
 * surviving replica and quarantine+repair of the corrupt one.
 */
TEST(ChaosHarness, CorruptReadsAreReservedAndQuarantined)
{
    faults::FaultSpec spec;
    spec.hdfsCorruptRate = 0.01;
    const chaos::ChaosRunResult result =
        chaos::runChaosRig(ChaosOptions{}, &spec);
    ASSERT_TRUE(result.completed) << result.error;
    EXPECT_GT(result.metrics.faults.corruptReads, 0u);
    EXPECT_GT(result.metrics.faults.quarantinedBytes, 0u);
}

/** A gray slow node stretches the run; factor 1.0 restores it. */
TEST(ChaosHarness, SlowNodeStretchesTheRun)
{
    const chaos::ChaosRunResult clean =
        chaos::runChaosRig(ChaosOptions{}, nullptr);
    ASSERT_TRUE(clean.completed) << clean.error;
    const faults::FaultSpec spec =
        faults::FaultSpec::parse("slow-node 1@5 6.0");
    const chaos::ChaosRunResult gray =
        chaos::runChaosRig(ChaosOptions{}, &spec);
    ASSERT_TRUE(gray.completed) << gray.error;
    EXPECT_GT(gray.elapsedSec, clean.elapsedSec);
}

TEST(ChaosHarness, InvariantsHoldOnFixedSeeds)
{
    for (const std::uint64_t seed : {7ULL, 21ULL, 42ULL}) {
        ChaosOptions options;
        options.seed = seed;
        options.faultsPerMinute = 2.0;
        const chaos::ChaosVerdict verdict =
            chaos::checkInvariants(options);
        EXPECT_TRUE(verdict.passed())
            << "seed " << seed << ": " << verdict.failure;
        EXPECT_GT(verdict.scheduleEvents, 0u);
    }
}

// ------------------------------------- checkpoint-bounded recovery

namespace recovery_helpers {

/**
 * One streaming tenant on a 3-slave cluster with node 1 killed
 * mid-stream (and rejoining later); @return its tenant summary.
 */
sched::TenantSummary
runKilledStream(double checkpointIntervalSec)
{
    sched::MultiJobSpec spec;
    sched::TenantSpec tenant;
    tenant.kind = sched::TenantSpec::Kind::Stream;
    tenant.workload = "lr";
    tenant.stream.ratePerSec = 0.5;
    tenant.stream.batches = 20;
    tenant.stream.checkpointIntervalSec = checkpointIntervalSec;
    spec.tenants.push_back(tenant);

    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    config.numSlaves = 3;
    spark::SparkConf conf;
    conf.executorCores = 8;

    const faults::FaultSpec faultSpec =
        faults::FaultSpec::parse("kill 1@25; rejoin 1@60");
    const workloads::MultiTenantResult result =
        workloads::runMultiTenant(spec, config, conf, &faultSpec);
    return result.tenancy.tenants.front();
}

} // namespace recovery_helpers

/**
 * The PR's headline acceptance: with periodic checkpointing, a
 * streaming tenant's post-kill recovery time is bounded by the
 * checkpoint interval — at most one interval's worth of batches ever
 * needs replaying, so the recovery-time SLO holds. Without periodic
 * checkpoints (interval 0 = full replay from the first batch) the
 * replay is unbounded, so the SLO verdict cannot be met.
 */
TEST(CheckpointRecovery, RecoveryTimeIsBoundedByTheInterval)
{
    const sched::TenantSummary ckpt =
        recovery_helpers::runKilledStream(10.0);
    ASSERT_TRUE(ckpt.streamRecovery);
    EXPECT_GE(ckpt.checkpoints, 1u);
    ASSERT_GE(ckpt.recoveries, 1u);
    EXPECT_GT(ckpt.maxRecoverySec, 0.0);
    EXPECT_LE(ckpt.maxRecoverySec, ckpt.checkpointIntervalSec);
    EXPECT_TRUE(ckpt.recoverySloMet());

    const sched::TenantSummary replay =
        recovery_helpers::runKilledStream(0.0);
    ASSERT_TRUE(replay.streamRecovery);
    EXPECT_EQ(replay.checkpoints, 0u);
    ASSERT_GE(replay.recoveries, 1u);
    EXPECT_GT(replay.maxRecoverySec, 0.0);
    EXPECT_FALSE(replay.recoverySloMet());
}

// ------------------------------------------- kill+rejoin regression

/**
 * Regression for the kill+rejoin path under a multi-tenant run: a
 * batch tenant and a streaming tenant share the cluster, node 1 dies
 * mid-run and rejoins, and every tenant still finishes all its work.
 */
TEST(MultiTenantFaults, KillAndRejoinUnderJobsSpecRun)
{
    const sched::MultiJobSpec spec = sched::MultiJobSpec::parse(
        "pool batch fifo\n"
        "pool stream fair weight=2\n"
        "job lr-small pool=batch\n"
        "stream lr pool=stream rate=0.5 batches=10 checkpoint=10\n");
    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    config.numSlaves = 3;
    spark::SparkConf conf;
    conf.executorCores = 8;
    conf.taskMaxFailures = 1000;

    const faults::FaultSpec faultSpec =
        faults::FaultSpec::parse("kill 1@20; rejoin 1@45");
    const workloads::MultiTenantResult result =
        workloads::runMultiTenant(spec, config, conf, &faultSpec);

    ASSERT_TRUE(result.faultsPresent);
    EXPECT_GT(result.seconds, 0.0);
    ASSERT_EQ(result.tenancy.tenants.size(), 2u);
    for (const sched::TenantSummary &tenant : result.tenancy.tenants)
        EXPECT_GT(tenant.jobs, 0) << tenant.name;
    const spark::StreamingMetrics &stream =
        result.tenants[1].streaming;
    EXPECT_EQ(stream.arrivals, 10u);
    EXPECT_EQ(stream.processed + stream.dropped, stream.arrivals);
    EXPECT_GE(stream.processed, 1u);
}

} // namespace
} // namespace doppio
