/**
 * @file
 * Unit tests for the discrete-event core.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace doppio::sim {
namespace {

TEST(Simulator, StartsAtZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0ULL);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&] { order.push_back(3); });
    sim.schedule(10, [&] { order.push_back(1); });
    sim.schedule(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30ULL);
}

TEST(Simulator, SameTickIsFifo)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        sim.schedule(5, [&, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedScheduling)
{
    Simulator sim;
    Tick fired_at = 0;
    sim.schedule(10, [&] {
        sim.schedule(15, [&] { fired_at = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(fired_at, 25ULL);
}

TEST(Simulator, CancelPreventsFiring)
{
    Simulator sim;
    bool fired = false;
    const EventId id = sim.schedule(10, [&] { fired = true; });
    sim.cancel(id);
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, CancelOneOfMany)
{
    Simulator sim;
    int count = 0;
    sim.schedule(1, [&] { ++count; });
    const EventId id = sim.schedule(2, [&] { ++count; });
    sim.schedule(3, [&] { ++count; });
    sim.cancel(id);
    sim.run();
    EXPECT_EQ(count, 2);
}

TEST(Simulator, PendingEventsAccountsForCancellations)
{
    Simulator sim;
    sim.schedule(1, [] {});
    const EventId id = sim.schedule(2, [] {});
    EXPECT_EQ(sim.pendingEvents(), 2u);
    sim.cancel(id);
    EXPECT_EQ(sim.pendingEvents(), 1u);
}

TEST(Simulator, RunOneEvent)
{
    Simulator sim;
    int count = 0;
    sim.schedule(1, [&] { ++count; });
    sim.schedule(2, [&] { ++count; });
    EXPECT_TRUE(sim.runOneEvent());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(sim.runOneEvent());
    EXPECT_FALSE(sim.runOneEvent());
    EXPECT_EQ(count, 2);
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int count = 0;
    sim.schedule(10, [&] { ++count; });
    sim.schedule(20, [&] { ++count; });
    sim.schedule(30, [&] { ++count; });
    sim.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run();
    EXPECT_EQ(count, 3);
}

TEST(Simulator, ScheduleAtAbsoluteTime)
{
    Simulator sim;
    Tick fired_at = 0;
    sim.scheduleAt(100, [&] { fired_at = sim.now(); });
    sim.run();
    EXPECT_EQ(fired_at, 100ULL);
}

TEST(Simulator, FiredEventsCounter)
{
    Simulator sim;
    for (int i = 0; i < 5; ++i)
        sim.schedule(static_cast<Tick>(i), [] {});
    sim.run();
    EXPECT_EQ(sim.firedEvents(), 5ULL);
}

TEST(Simulator, ManyEventsStressOrdering)
{
    Simulator sim;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        // Pseudo-random delays.
        const Tick when = static_cast<Tick>((i * 7919) % 1000);
        sim.scheduleAt(when, [&, when] {
            if (when < last)
                monotone = false;
            last = when;
        });
    }
    sim.run();
    EXPECT_TRUE(monotone);
}

} // namespace
} // namespace doppio::sim
