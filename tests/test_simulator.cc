/**
 * @file
 * Unit tests for the discrete-event core.
 */

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace doppio::sim {
namespace {

TEST(Simulator, StartsAtZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0ULL);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&] { order.push_back(3); });
    sim.schedule(10, [&] { order.push_back(1); });
    sim.schedule(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30ULL);
}

TEST(Simulator, SameTickIsFifo)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        sim.schedule(5, [&, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedScheduling)
{
    Simulator sim;
    Tick fired_at = 0;
    sim.schedule(10, [&] {
        sim.schedule(15, [&] { fired_at = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(fired_at, 25ULL);
}

TEST(Simulator, CancelPreventsFiring)
{
    Simulator sim;
    bool fired = false;
    const EventId id = sim.schedule(10, [&] { fired = true; });
    sim.cancel(id);
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, CancelOneOfMany)
{
    Simulator sim;
    int count = 0;
    sim.schedule(1, [&] { ++count; });
    const EventId id = sim.schedule(2, [&] { ++count; });
    sim.schedule(3, [&] { ++count; });
    sim.cancel(id);
    sim.run();
    EXPECT_EQ(count, 2);
}

TEST(Simulator, PendingEventsAccountsForCancellations)
{
    Simulator sim;
    sim.schedule(1, [] {});
    const EventId id = sim.schedule(2, [] {});
    EXPECT_EQ(sim.pendingEvents(), 2u);
    sim.cancel(id);
    EXPECT_EQ(sim.pendingEvents(), 1u);
}

TEST(Simulator, RunOneEvent)
{
    Simulator sim;
    int count = 0;
    sim.schedule(1, [&] { ++count; });
    sim.schedule(2, [&] { ++count; });
    EXPECT_TRUE(sim.runOneEvent());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(sim.runOneEvent());
    EXPECT_FALSE(sim.runOneEvent());
    EXPECT_EQ(count, 2);
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int count = 0;
    sim.schedule(10, [&] { ++count; });
    sim.schedule(20, [&] { ++count; });
    sim.schedule(30, [&] { ++count; });
    sim.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run();
    EXPECT_EQ(count, 3);
}

TEST(Simulator, ScheduleAtAbsoluteTime)
{
    Simulator sim;
    Tick fired_at = 0;
    sim.scheduleAt(100, [&] { fired_at = sim.now(); });
    sim.run();
    EXPECT_EQ(fired_at, 100ULL);
}

TEST(Simulator, FiredEventsCounter)
{
    Simulator sim;
    for (int i = 0; i < 5; ++i)
        sim.schedule(static_cast<Tick>(i), [] {});
    sim.run();
    EXPECT_EQ(sim.firedEvents(), 5ULL);
}

TEST(Simulator, CancelAfterFiringIsANoOp)
{
    Simulator sim;
    const EventId id = sim.schedule(5, [] {});
    sim.schedule(10, [] {});
    EXPECT_TRUE(sim.runOneEvent());
    // Regression: cancelling an already-fired event used to enter a
    // tombstone that never matched a queue entry, so pendingEvents()
    // under-counted forever after.
    sim.cancel(id);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run();
    EXPECT_EQ(sim.pendingEvents(), 0u);
    EXPECT_EQ(sim.firedEvents(), 2ULL);
}

TEST(Simulator, CancelUnknownIdIsANoOp)
{
    Simulator sim;
    sim.schedule(5, [] {});
    sim.cancel(0);                  // never a valid id
    sim.cancel(0xdeadbeefULL << 24); // plausible-looking, never issued
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run();
    EXPECT_EQ(sim.firedEvents(), 1ULL);
}

TEST(Simulator, DoubleCancelCountsOnce)
{
    Simulator sim;
    sim.schedule(1, [] {});
    const EventId id = sim.schedule(2, [] {});
    sim.cancel(id);
    sim.cancel(id);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run();
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, CancelledSlotReuseGetsFreshId)
{
    Simulator sim;
    // Exhaust and recycle a slot: the recycled id must not alias the
    // cancelled one (generation bump).
    const EventId a = sim.schedule(5, [] {});
    sim.cancel(a);
    sim.run(); // releases the cancelled slot
    bool fired = false;
    const EventId b = sim.schedule(5, [&] { fired = true; });
    EXPECT_NE(a, b);
    sim.cancel(a); // stale id: must not touch the new event
    sim.run();
    EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilAdvancesClockToDeadline)
{
    Simulator sim;
    sim.schedule(100, [] {});
    // Regression: with events still pending beyond the deadline, the
    // clock used to stay put instead of advancing to the deadline.
    EXPECT_EQ(sim.runUntil(40), 40ULL);
    EXPECT_EQ(sim.now(), 40ULL);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    // A later runUntil with an earlier deadline never rewinds.
    EXPECT_EQ(sim.runUntil(30), 40ULL);
    sim.run();
    EXPECT_EQ(sim.now(), 100ULL);
}

TEST(Simulator, RunUntilEmptyQueueAdvancesClock)
{
    Simulator sim;
    EXPECT_EQ(sim.runUntil(25), 25ULL);
    EXPECT_EQ(sim.now(), 25ULL);
}

TEST(Simulator, RunUntilSkipsCancelledHeadAtDeadline)
{
    Simulator sim;
    int count = 0;
    const EventId id = sim.schedule(10, [&] { ++count; });
    sim.schedule(50, [&] { ++count; });
    sim.cancel(id);
    // The cancelled head is inside the window; the next live event is
    // beyond it and must NOT fire.
    EXPECT_EQ(sim.runUntil(20), 20ULL);
    EXPECT_EQ(count, 0);
    sim.run();
    EXPECT_EQ(count, 1);
}

TEST(Simulator, ManyEventsStressOrdering)
{
    Simulator sim;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        // Pseudo-random delays.
        const Tick when = static_cast<Tick>((i * 7919) % 1000);
        sim.scheduleAt(when, [&, when] {
            if (when < last)
                monotone = false;
            last = when;
        });
    }
    sim.run();
    EXPECT_TRUE(monotone);
}

/**
 * Determinism stress (DESIGN.md §11): 50k random schedule / cancel /
 * run-one interleavings must fire in exactly the (tick,
 * insertion-order) sequence a reference model predicts, regardless of
 * slot reuse, heap layout or cancellation pattern.
 */
TEST(Simulator, RandomScheduleCancelStressMatchesReference)
{
    Simulator sim;
    std::mt19937_64 rng(0xD0FF10u);

    struct Ref
    {
        Tick when;
        std::size_t tag; //!< insertion order (the FIFO tie-break)
    };
    std::vector<Ref> reference;      // every event ever scheduled
    std::vector<char> cancelled;     // by tag
    std::vector<char> fired_flag;    // by tag
    std::vector<std::size_t> fired;  // observed firing order
    std::vector<std::pair<EventId, std::size_t>> ids; // id -> tag

    for (int op = 0; op < 50'000; ++op) {
        const std::uint64_t roll = rng() % 100;
        if (roll < 70 || ids.empty()) {
            // Schedule strictly in the future so the reference order
            // is a pure (when, insertion) sort.
            const Tick when = sim.now() + 1 + rng() % 1000;
            const std::size_t tag = reference.size();
            const EventId id = sim.scheduleAt(when, [&, tag] {
                fired.push_back(tag);
                fired_flag[tag] = 1;
            });
            reference.push_back({when, tag});
            cancelled.push_back(0);
            fired_flag.push_back(0);
            ids.emplace_back(id, tag);
        } else if (roll < 90) {
            // Cancel a random event; cancelling one that already
            // fired or was already cancelled must be a no-op.
            const auto &[id, tag] = ids[rng() % ids.size()];
            sim.cancel(id);
            if (!fired_flag[tag])
                cancelled[tag] = 1;
        } else {
            sim.runOneEvent();
        }
    }
    sim.run();

    std::vector<Ref> expected;
    for (const Ref &ref : reference) {
        if (!cancelled[ref.tag])
            expected.push_back(ref);
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const Ref &a, const Ref &b) {
                         return a.when < b.when;
                     });
    ASSERT_EQ(fired.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        ASSERT_EQ(fired[i], expected[i].tag) << "at position " << i;
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

} // namespace
} // namespace doppio::sim
