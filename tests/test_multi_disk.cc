/**
 * @file
 * Tests for multi-disk (JBOD) nodes and the model's disk-count
 * generality claim (paper §IV-C: "our model relates to disk bandwidth
 * rather than disk number").
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "dfs/hdfs.h"
#include "model/platform_profile.h"
#include "sim/simulator.h"
#include "spark/task_engine.h"
#include "workloads/gatk4.h"

namespace doppio {
namespace {

TEST(MultiDisk, NodeOwnsConfiguredCounts)
{
    sim::Simulator sim;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    config.node.hdfsDiskCount = 2;
    config.node.localDiskCount = 4;
    cluster::Cluster cluster(sim, config);
    EXPECT_EQ(cluster.node(0).hdfsDiskCount(), 2);
    EXPECT_EQ(cluster.node(0).localDiskCount(), 4);
    EXPECT_NE(&cluster.node(0).localDisk(0),
              &cluster.node(0).localDisk(3));
}

TEST(MultiDisk, InvalidCountFatal)
{
    sim::Simulator sim;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    config.node.localDiskCount = 0;
    EXPECT_THROW(cluster::Cluster(sim, config), FatalError);
}

TEST(MultiDisk, RoundRobinSpreadsRequests)
{
    sim::Simulator sim;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    config.node.localDiskCount = 3;
    cluster::Cluster cluster(sim, config);
    for (int i = 0; i < 9; ++i)
        cluster.node(0).pickLocalDisk().submit(
            storage::IoOp::PersistRead, kib(30), [] {});
    sim.run();
    for (int d = 0; d < 3; ++d) {
        EXPECT_EQ(cluster.node(0)
                      .localDisk(d)
                      .stats()
                      .totalRequests(storage::IoKind::Read),
                  3ULL);
    }
}

TEST(MultiDisk, TwoDisksDoubleAdmissionThroughput)
{
    // An admission-limited stage (30 KiB shuffle-ish reads on HDD)
    // finishes ~2x faster with two local disks.
    auto run = [](int disks) {
        sim::Simulator sim;
        cluster::ClusterConfig config =
            cluster::ClusterConfig::motivationCluster();
        config.applyHybrid(cluster::HybridConfig::config4());
        config.node.localDiskCount = disks;
        config.taskJitterSigma = 0.0;
        cluster::Cluster cluster(sim, config);
        dfs::Hdfs hdfs(cluster);
        spark::SparkConf conf;
        conf.executorCores = 36;
        spark::TaskEngine engine(cluster, hdfs, conf);
        spark::StageSpec stage;
        stage.name = "read";
        spark::IoPhaseSpec io;
        io.op = storage::IoOp::PersistRead;
        io.bytesPerTask = mib(27);
        io.requestSize = kib(30);
        stage.groups.push_back(
            spark::TaskGroupSpec{"g", 600, {io}, mib(27)});
        return engine.runStage(stage).seconds();
    };
    const double one = run(1);
    const double two = run(2);
    EXPECT_NEAR(one / two, 2.0, 0.2);
}

TEST(MultiDisk, PlatformProfileScalesWithCount)
{
    const model::PlatformProfile single =
        model::PlatformProfile::fromDisks(storage::makeSsdParams(),
                                          storage::makeHddParams());
    const model::PlatformProfile quad =
        model::PlatformProfile::fromDisks(storage::makeSsdParams(), 1,
                                          storage::makeHddParams(), 4);
    const double rs = static_cast<double>(kib(30));
    EXPECT_NEAR(quad.bandwidthFor(storage::IoOp::ShuffleRead, rs),
                4.0 * single.bandwidthFor(storage::IoOp::ShuffleRead,
                                          rs),
                1e3);
    // HDFS side unchanged (count 1).
    EXPECT_NEAR(quad.bandwidthFor(storage::IoOp::HdfsRead, rs),
                single.bandwidthFor(storage::IoOp::HdfsRead, rs), 1e3);
}

TEST(MultiDisk, FromNodeUsesCounts)
{
    cluster::NodeConfig node;
    node.hdfsDisk = storage::makeSsdParams();
    node.localDisk = storage::makeHddParams();
    node.localDiskCount = 2;
    const model::PlatformProfile profile =
        model::PlatformProfile::fromNode(node);
    const double rs = static_cast<double>(kib(30));
    EXPECT_NEAR(toMiBps(profile.bandwidthFor(
                    storage::IoOp::ShuffleRead, rs)),
                2.0 * 14.6, 2.0);
}

TEST(MultiDisk, InvalidProfileCountFatal)
{
    EXPECT_THROW(model::PlatformProfile::fromDisks(
                     storage::makeSsdParams(), 0,
                     storage::makeHddParams(), 1),
                 FatalError);
}

TEST(MultiDisk, ModelTracksJbodGatk4)
{
    // End-to-end: the model fitted on single disks predicts a
    // two-disk JBOD cluster (paper's multi-disk generality claim).
    const workloads::Gatk4 gatk4(
        workloads::Gatk4::Options::scaled(100.0));
    cluster::ClusterConfig base =
        cluster::ClusterConfig::evaluationCluster();
    model::Profiler::Options options;
    options.fitGc = true;
    model::Profiler profiler(gatk4.runner(), base, spark::SparkConf{},
                             options);
    const model::AppModel app = profiler.fit("GATK4");

    cluster::ClusterConfig config = base;
    config.applyHybrid(cluster::HybridConfig::config3());
    config.node.localDiskCount = 2;
    spark::SparkConf conf;
    conf.executorCores = 24;
    const double exp_s = gatk4.run(config, conf).seconds();
    const double model_s = app.predictSeconds(
        config.numSlaves, 24,
        model::PlatformProfile::fromNode(config.node));
    EXPECT_LT(relativeError(model_s, exp_s), 0.15)
        << "model " << model_s << " exp " << exp_s;
}

TEST(NvmePreset, OrdersOfMagnitudeAboveHdd)
{
    const storage::DiskParams nvme = storage::makeNvmeParams();
    EXPECT_NO_THROW(nvme.validate());
    const double at30k =
        nvme.effectiveBandwidth(storage::IoKind::Read, kib(30));
    const double hdd30k =
        storage::makeHddParams().effectiveBandwidth(
            storage::IoKind::Read, kib(30));
    EXPECT_GT(at30k / hdd30k, 100.0);
}

} // namespace
} // namespace doppio
