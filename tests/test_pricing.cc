/**
 * @file
 * Unit tests for Google Cloud pricing (Table V) and reference configs.
 */

#include <gtest/gtest.h>

#include "cloud/pricing.h"
#include "common/logging.h"

namespace doppio::cloud {
namespace {

constexpr Bytes kGB = 1000ULL * 1000 * 1000;

TEST(Pricing, TableVDiskRates)
{
    const GcpPricing p;
    EXPECT_DOUBLE_EQ(p.standardGbPerMonth, 0.040);
    EXPECT_DOUBLE_EQ(p.ssdGbPerMonth, 0.170);
    // SSD is 4.2x the standard price (paper §VI).
    EXPECT_NEAR(p.ssdGbPerMonth / p.standardGbPerMonth, 4.25, 0.01);
}

TEST(Pricing, DiskPerHour)
{
    const GcpPricing p;
    // 1000 GB standard: 1000 * 0.04 / 730 = $0.0548/h.
    EXPECT_NEAR(p.diskPerHour(CloudDiskType::Standard, 1000 * kGB),
                0.0548, 0.0001);
    EXPECT_NEAR(p.diskPerHour(CloudDiskType::Ssd, 200 * kGB), 0.0466,
                0.0001);
}

TEST(Pricing, FleetCostPerHour)
{
    const GcpPricing p;
    CloudConfig c;
    c.workers = 10;
    c.vcpus = 16;
    c.hdfsType = CloudDiskType::Standard;
    c.hdfsSize = 1000 * kGB;
    c.localType = CloudDiskType::Ssd;
    c.localSize = 200 * kGB;
    const double per_worker =
        16 * p.vcpuPerHour + 0.0548 + 0.0466;
    EXPECT_NEAR(fleetCostPerHour(c, p), 10 * per_worker, 0.001);
}

TEST(Pricing, JobCostScalesWithTime)
{
    const GcpPricing p;
    CloudConfig c;
    c.workers = 1;
    c.vcpus = 16;
    c.hdfsSize = kGB;
    c.localSize = kGB;
    const double one_hour = jobCost(c, p, 3600.0);
    EXPECT_NEAR(jobCost(c, p, 7200.0), 2.0 * one_hour, 1e-9);
}

TEST(Pricing, ReferenceR1)
{
    // Spark hardware-provisioning guide: 8 x 1 TB per 16-vCPU worker.
    const CloudConfig r1 = referenceR1();
    EXPECT_EQ(r1.workers, 10);
    EXPECT_EQ(r1.vcpus, 16);
    EXPECT_EQ(r1.hdfsSize + r1.localSize, 8000 * kGB);
    EXPECT_EQ(r1.hdfsType, CloudDiskType::Standard);
}

TEST(Pricing, ReferenceR2TwiceR1Disks)
{
    const CloudConfig r1 = referenceR1();
    const CloudConfig r2 = referenceR2();
    EXPECT_EQ(r2.hdfsSize + r2.localSize,
              2 * (r1.hdfsSize + r1.localSize));
}

TEST(Pricing, R2CostsMoreThanR1AtEqualRuntime)
{
    const GcpPricing p;
    EXPECT_GT(fleetCostPerHour(referenceR2(), p),
              fleetCostPerHour(referenceR1(), p));
}

TEST(Pricing, DescribeIsHumanReadable)
{
    const std::string desc = referenceR1().describe();
    EXPECT_NE(desc.find("pd-standard"), std::string::npos);
    EXPECT_NE(desc.find("16 vCPU"), std::string::npos);
}

TEST(Pricing, InvalidConfigFatal)
{
    const GcpPricing p;
    CloudConfig bad;
    bad.workers = 0;
    EXPECT_THROW(fleetCostPerHour(bad, p), FatalError);
}

} // namespace
} // namespace doppio::cloud
