/**
 * @file
 * Unit tests for the cloud cost optimizer.
 */

#include <gtest/gtest.h>

#include "cloud/optimizer.h"
#include "common/logging.h"

namespace doppio::cloud {
namespace {

constexpr Bytes kGB = 1000ULL * 1000 * 1000;

/**
 * A hand-built app model resembling GATK4's profile: a GC-ish compute
 * stage with a large shuffle write, and a shuffle-read-dominated
 * stage — enough structure that disk size matters up to a knee.
 */
model::AppModel
syntheticApp()
{
    model::AppModel app;
    app.name = "synthetic";

    model::StageModel map;
    map.name = "map";
    map.tasks = 976;
    map.tAvg = 30.0;
    model::IoComponent write;
    write.op = storage::IoOp::ShuffleWrite;
    write.bytes = static_cast<Bytes>(334) * kGB;
    write.requestSize = 350e6;
    map.io.push_back(write);
    app.stages.push_back(map);

    model::StageModel reduce;
    reduce.name = "reduce";
    reduce.tasks = 12000;
    reduce.tAvg = 9.0;
    model::IoComponent read;
    read.op = storage::IoOp::ShuffleRead;
    read.bytes = static_cast<Bytes>(334) * kGB;
    read.requestSize = 30000.0;
    reduce.io.push_back(read);
    app.stages.push_back(reduce);
    return app;
}

CostOptimizer
makeOptimizer()
{
    return CostOptimizer(syntheticApp(), GcpPricing{},
                         CostOptimizer::Options{});
}

TEST(Optimizer, EvaluateComputesCostFromModelTime)
{
    const CostOptimizer opt = makeOptimizer();
    CloudConfig config;
    config.workers = 10;
    config.vcpus = 16;
    config.hdfsSize = 1000 * kGB;
    config.localSize = 2000 * kGB;
    const Evaluation eval = opt.evaluate(config);
    EXPECT_GT(eval.seconds, 0.0);
    EXPECT_NEAR(eval.cost,
                jobCost(config, GcpPricing{}, eval.seconds), 1e-9);
}

TEST(Optimizer, EvaluateIsDeterministic)
{
    const CostOptimizer opt = makeOptimizer();
    CloudConfig config;
    config.hdfsSize = 500 * kGB;
    config.localSize = 500 * kGB;
    const Evaluation a = opt.evaluate(config);
    const Evaluation b = opt.evaluate(config);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(Optimizer, BiggerLocalDiskNeverSlower)
{
    const CostOptimizer opt = makeOptimizer();
    CloudConfig base;
    base.hdfsSize = 1000 * kGB;
    std::vector<Bytes> sizes;
    for (Bytes gb = 200; gb <= 3200; gb *= 2)
        sizes.push_back(gb * kGB);
    const auto sweep = opt.sweepLocalSize(base, sizes);
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_LE(sweep[i].seconds, sweep[i - 1].seconds * 1.001);
}

TEST(Optimizer, RuntimeFlattensBeyondIopsKnee)
{
    // Fig. 14: past ~2 TB the pd-standard IOPS cap is reached.
    const CostOptimizer opt = makeOptimizer();
    CloudConfig base;
    base.hdfsSize = 1000 * kGB;
    const auto sweep = opt.sweepLocalSize(
        base, {2000 * kGB, 4000 * kGB, 8000 * kGB});
    EXPECT_NEAR(sweep[1].seconds, sweep[0].seconds,
                sweep[0].seconds * 0.02);
    EXPECT_NEAR(sweep[2].seconds, sweep[0].seconds,
                sweep[0].seconds * 0.02);
}

TEST(Optimizer, CostRisesOnceRuntimeIsFlat)
{
    const CostOptimizer opt = makeOptimizer();
    CloudConfig base;
    base.hdfsSize = 1000 * kGB;
    const auto sweep = opt.sweepLocalSize(
        base, {2000 * kGB, 4000 * kGB, 8000 * kGB});
    EXPECT_LT(sweep[0].cost, sweep[1].cost);
    EXPECT_LT(sweep[1].cost, sweep[2].cost);
}

TEST(Optimizer, OptimizeBeatsReferenceConfigs)
{
    const CostOptimizer opt = makeOptimizer();
    const Evaluation best = opt.optimize();
    const Evaluation r1 = opt.evaluate(referenceR1());
    const Evaluation r2 = opt.evaluate(referenceR2());
    EXPECT_LT(best.cost, r1.cost);
    EXPECT_LT(best.cost, r2.cost);
}

TEST(Optimizer, OptimizeReturnsGridMinimum)
{
    CostOptimizer::Options options;
    options.sizeGrid = {500 * kGB, 1000 * kGB, 2000 * kGB};
    options.localTypes = {CloudDiskType::Standard};
    const CostOptimizer opt(syntheticApp(), GcpPricing{}, options);
    const Evaluation best = opt.optimize();
    for (Bytes hdfs : options.sizeGrid) {
        for (Bytes local : options.sizeGrid) {
            CloudConfig config;
            config.workers = options.workers;
            config.vcpus = 16;
            config.hdfsSize = hdfs;
            config.localSize = local;
            EXPECT_GE(opt.evaluate(config).cost, best.cost - 1e-9);
        }
    }
}

TEST(Optimizer, SweepHdfsSizeVariesOnlyHdfs)
{
    const CostOptimizer opt = makeOptimizer();
    CloudConfig base;
    base.localSize = 2000 * kGB;
    const auto sweep =
        opt.sweepHdfsSize(base, {500 * kGB, 1000 * kGB});
    ASSERT_EQ(sweep.size(), 2u);
    EXPECT_EQ(sweep[0].config.hdfsSize, 500 * kGB);
    EXPECT_EQ(sweep[1].config.hdfsSize, 1000 * kGB);
    EXPECT_EQ(sweep[0].config.localSize, 2000 * kGB);
}

TEST(Optimizer, DefaultGridIsGeometric)
{
    const auto grid = CostOptimizer::defaultSizeGrid();
    ASSERT_GE(grid.size(), 8u);
    // Strictly increasing, with at most half-octave steps.
    for (std::size_t i = 1; i < grid.size(); ++i) {
        const double ratio = static_cast<double>(grid[i]) /
                             static_cast<double>(grid[i - 1]);
        EXPECT_GT(ratio, 1.0);
        EXPECT_LE(ratio, 1.51);
    }
    EXPECT_EQ(grid.front(), 100 * kGB);
    EXPECT_GE(grid.back(), 6400 * kGB);
}

TEST(Optimizer, InvalidOptionsFatal)
{
    CostOptimizer::Options bad;
    bad.workers = 0;
    EXPECT_THROW(CostOptimizer(syntheticApp(), GcpPricing{}, bad),
                 FatalError);
}

TEST(Optimizer, ParallelJobsAreByteIdenticalToSerial)
{
    // The whole search space on a reduced grid, serial vs threaded:
    // every evaluation and the winner must agree exactly (the sweep
    // commits results in input order, DESIGN.md §11).
    auto search = [](int jobs) {
        CostOptimizer::Options options;
        options.sizeGrid = {250 * kGB, 1000 * kGB, 4000 * kGB};
        options.jobs = jobs;
        return CostOptimizer(syntheticApp(), GcpPricing{}, options);
    };
    const CostOptimizer serial = search(1);
    const Evaluation best_serial = serial.optimize();

    CloudConfig base;
    base.workers = 10;
    base.vcpus = 16;
    base.hdfsSize = 1000 * kGB;
    base.localSize = 2000 * kGB;
    const std::vector<Bytes> sizes = {200 * kGB, 800 * kGB,
                                      3200 * kGB};
    const auto sweep_serial = serial.sweepLocalSize(base, sizes);

    for (int jobs : {2, 4, 8}) {
        const CostOptimizer threaded = search(jobs);
        const Evaluation best = threaded.optimize();
        EXPECT_EQ(best.config.describe(),
                  best_serial.config.describe());
        EXPECT_EQ(best.seconds, best_serial.seconds);
        EXPECT_EQ(best.cost, best_serial.cost);

        const auto sweep = threaded.sweepLocalSize(base, sizes);
        ASSERT_EQ(sweep.size(), sweep_serial.size());
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            EXPECT_EQ(sweep[i].seconds, sweep_serial[i].seconds);
            EXPECT_EQ(sweep[i].cost, sweep_serial[i].cost);
        }
    }
}

TEST(Optimizer, CopiesAreIndependent)
{
    // The fio-table cache moved behind a mutex+unique_ptr; copying
    // must deep-copy the cache and still work standalone.
    const CostOptimizer original = makeOptimizer();
    CloudConfig config;
    config.workers = 10;
    config.vcpus = 16;
    config.hdfsSize = 1000 * kGB;
    config.localSize = 2000 * kGB;
    const Evaluation before = original.evaluate(config);
    const CostOptimizer copy = original; // after the cache is warm
    const Evaluation after = copy.evaluate(config);
    EXPECT_EQ(before.seconds, after.seconds);
    EXPECT_EQ(before.cost, after.cost);
}

} // namespace
} // namespace doppio::cloud
