/**
 * @file
 * Unit tests for the cloud cost optimizer.
 */

#include <gtest/gtest.h>

#include "cloud/optimizer.h"
#include "common/logging.h"
#include "common/random.h"

namespace doppio::cloud {
namespace {

constexpr Bytes kGB = 1000ULL * 1000 * 1000;

/**
 * A hand-built app model resembling GATK4's profile: a GC-ish compute
 * stage with a large shuffle write, and a shuffle-read-dominated
 * stage — enough structure that disk size matters up to a knee.
 */
model::AppModel
syntheticApp()
{
    model::AppModel app;
    app.name = "synthetic";

    model::StageModel map;
    map.name = "map";
    map.tasks = 976;
    map.tAvg = 30.0;
    model::IoComponent write;
    write.op = storage::IoOp::ShuffleWrite;
    write.bytes = static_cast<Bytes>(334) * kGB;
    write.requestSize = 350e6;
    map.io.push_back(write);
    app.stages.push_back(map);

    model::StageModel reduce;
    reduce.name = "reduce";
    reduce.tasks = 12000;
    reduce.tAvg = 9.0;
    model::IoComponent read;
    read.op = storage::IoOp::ShuffleRead;
    read.bytes = static_cast<Bytes>(334) * kGB;
    read.requestSize = 30000.0;
    reduce.io.push_back(read);
    app.stages.push_back(reduce);
    return app;
}

CostOptimizer
makeOptimizer()
{
    return CostOptimizer(syntheticApp(), GcpPricing{},
                         CostOptimizer::Options{});
}

TEST(Optimizer, EvaluateComputesCostFromModelTime)
{
    const CostOptimizer opt = makeOptimizer();
    CloudConfig config;
    config.workers = 10;
    config.vcpus = 16;
    config.hdfsSize = 1000 * kGB;
    config.localSize = 2000 * kGB;
    const Evaluation eval = opt.evaluate(config);
    EXPECT_GT(eval.seconds, 0.0);
    EXPECT_NEAR(eval.cost,
                jobCost(config, GcpPricing{}, eval.seconds), 1e-9);
}

TEST(Optimizer, EvaluateIsDeterministic)
{
    const CostOptimizer opt = makeOptimizer();
    CloudConfig config;
    config.hdfsSize = 500 * kGB;
    config.localSize = 500 * kGB;
    const Evaluation a = opt.evaluate(config);
    const Evaluation b = opt.evaluate(config);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(Optimizer, BiggerLocalDiskNeverSlower)
{
    const CostOptimizer opt = makeOptimizer();
    CloudConfig base;
    base.hdfsSize = 1000 * kGB;
    std::vector<Bytes> sizes;
    for (Bytes gb = 200; gb <= 3200; gb *= 2)
        sizes.push_back(gb * kGB);
    const auto sweep = opt.sweepLocalSize(base, sizes);
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_LE(sweep[i].seconds, sweep[i - 1].seconds * 1.001);
}

TEST(Optimizer, RuntimeFlattensBeyondIopsKnee)
{
    // Fig. 14: past ~2 TB the pd-standard IOPS cap is reached.
    const CostOptimizer opt = makeOptimizer();
    CloudConfig base;
    base.hdfsSize = 1000 * kGB;
    const auto sweep = opt.sweepLocalSize(
        base, {2000 * kGB, 4000 * kGB, 8000 * kGB});
    EXPECT_NEAR(sweep[1].seconds, sweep[0].seconds,
                sweep[0].seconds * 0.02);
    EXPECT_NEAR(sweep[2].seconds, sweep[0].seconds,
                sweep[0].seconds * 0.02);
}

TEST(Optimizer, CostRisesOnceRuntimeIsFlat)
{
    const CostOptimizer opt = makeOptimizer();
    CloudConfig base;
    base.hdfsSize = 1000 * kGB;
    const auto sweep = opt.sweepLocalSize(
        base, {2000 * kGB, 4000 * kGB, 8000 * kGB});
    EXPECT_LT(sweep[0].cost, sweep[1].cost);
    EXPECT_LT(sweep[1].cost, sweep[2].cost);
}

TEST(Optimizer, OptimizeBeatsReferenceConfigs)
{
    const CostOptimizer opt = makeOptimizer();
    const Evaluation best = opt.optimize();
    const Evaluation r1 = opt.evaluate(referenceR1());
    const Evaluation r2 = opt.evaluate(referenceR2());
    EXPECT_LT(best.cost, r1.cost);
    EXPECT_LT(best.cost, r2.cost);
}

TEST(Optimizer, OptimizeReturnsGridMinimum)
{
    CostOptimizer::Options options;
    options.sizeGrid = {500 * kGB, 1000 * kGB, 2000 * kGB};
    options.localTypes = {CloudDiskType::Standard};
    const CostOptimizer opt(syntheticApp(), GcpPricing{}, options);
    const Evaluation best = opt.optimize();
    for (Bytes hdfs : options.sizeGrid) {
        for (Bytes local : options.sizeGrid) {
            CloudConfig config;
            config.workers = options.workers;
            config.vcpus = 16;
            config.hdfsSize = hdfs;
            config.localSize = local;
            EXPECT_GE(opt.evaluate(config).cost, best.cost - 1e-9);
        }
    }
}

TEST(Optimizer, SweepHdfsSizeVariesOnlyHdfs)
{
    const CostOptimizer opt = makeOptimizer();
    CloudConfig base;
    base.localSize = 2000 * kGB;
    const auto sweep =
        opt.sweepHdfsSize(base, {500 * kGB, 1000 * kGB});
    ASSERT_EQ(sweep.size(), 2u);
    EXPECT_EQ(sweep[0].config.hdfsSize, 500 * kGB);
    EXPECT_EQ(sweep[1].config.hdfsSize, 1000 * kGB);
    EXPECT_EQ(sweep[0].config.localSize, 2000 * kGB);
}

TEST(Optimizer, DefaultGridIsGeometric)
{
    const auto grid = CostOptimizer::defaultSizeGrid();
    ASSERT_GE(grid.size(), 8u);
    // Strictly increasing, with at most half-octave steps.
    for (std::size_t i = 1; i < grid.size(); ++i) {
        const double ratio = static_cast<double>(grid[i]) /
                             static_cast<double>(grid[i - 1]);
        EXPECT_GT(ratio, 1.0);
        EXPECT_LE(ratio, 1.51);
    }
    EXPECT_EQ(grid.front(), 100 * kGB);
    EXPECT_GE(grid.back(), 6400 * kGB);
}

TEST(Optimizer, InvalidOptionsFatal)
{
    CostOptimizer::Options bad;
    bad.workers = 0;
    EXPECT_THROW(CostOptimizer(syntheticApp(), GcpPricing{}, bad),
                 FatalError);
}

TEST(Optimizer, ParallelJobsAreByteIdenticalToSerial)
{
    // The whole search space on a reduced grid, serial vs threaded:
    // every evaluation and the winner must agree exactly (the sweep
    // commits results in input order, DESIGN.md §11).
    auto search = [](int jobs) {
        CostOptimizer::Options options;
        options.sizeGrid = {250 * kGB, 1000 * kGB, 4000 * kGB};
        options.jobs = jobs;
        return CostOptimizer(syntheticApp(), GcpPricing{}, options);
    };
    const CostOptimizer serial = search(1);
    const Evaluation best_serial = serial.optimize();

    CloudConfig base;
    base.workers = 10;
    base.vcpus = 16;
    base.hdfsSize = 1000 * kGB;
    base.localSize = 2000 * kGB;
    const std::vector<Bytes> sizes = {200 * kGB, 800 * kGB,
                                      3200 * kGB};
    const auto sweep_serial = serial.sweepLocalSize(base, sizes);

    for (int jobs : {2, 4, 8}) {
        const CostOptimizer threaded = search(jobs);
        const Evaluation best = threaded.optimize();
        EXPECT_EQ(best.config.describe(),
                  best_serial.config.describe());
        EXPECT_EQ(best.seconds, best_serial.seconds);
        EXPECT_EQ(best.cost, best_serial.cost);

        const auto sweep = threaded.sweepLocalSize(base, sizes);
        ASSERT_EQ(sweep.size(), sweep_serial.size());
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            EXPECT_EQ(sweep[i].seconds, sweep_serial[i].seconds);
            EXPECT_EQ(sweep[i].cost, sweep_serial[i].cost);
        }
    }
}

/** Assert the two constrained searches return identical answers. */
void
expectIdentical(const ConstrainedResult &pruned,
                const ConstrainedResult &exhaustive)
{
    ASSERT_EQ(pruned.feasible, exhaustive.feasible);
    if (!pruned.feasible)
        return;
    // Byte-identical, not approximately equal: both searches must pick
    // the same grid cell and report the same doubles bit for bit.
    EXPECT_EQ(pruned.best.config.describe(),
              exhaustive.best.config.describe());
    EXPECT_EQ(pruned.best.config.hdfsSize,
              exhaustive.best.config.hdfsSize);
    EXPECT_EQ(pruned.best.config.localSize,
              exhaustive.best.config.localSize);
    EXPECT_EQ(pruned.best.seconds, exhaustive.best.seconds);
    EXPECT_EQ(pruned.best.cost, exhaustive.best.cost);
}

TEST(Constrained, MatchesExhaustiveOnDefaultGrid)
{
    // The acceptance sweep: several deadlines and budgets spanning
    // infeasible -> tight -> loose, answered on the full default grid.
    // Aggregate cell touches must show >= 3x pruning.
    const CostOptimizer opt = makeOptimizer();
    const double minRuntime = opt.optimizeExhaustive(
        Constraint::fastestUnderBudget(1e9)).best.seconds;
    const double minCost =
        opt.optimizeExhaustive(Constraint::minCost()).best.cost;

    std::vector<Constraint> constraints;
    for (const double f : {0.9, 1.0, 1.2, 2.0, 10.0})
        constraints.push_back(
            Constraint::cheapestUnderDeadline(minRuntime * f));
    for (const double f : {0.9, 1.0, 1.5, 3.0})
        constraints.push_back(Constraint::fastestUnderBudget(minCost * f));

    std::uint64_t totalCells = 0;
    std::uint64_t touchedCells = 0;
    for (const Constraint &constraint : constraints) {
        const ConstrainedResult pruned =
            opt.optimizeConstrained(constraint);
        const ConstrainedResult exhaustive =
            opt.optimizeExhaustive(constraint);
        expectIdentical(pruned, exhaustive);
        EXPECT_EQ(pruned.stats.exhaustiveFallbacks, 0u);
        totalCells += pruned.stats.cellsTotal;
        touchedCells += pruned.stats.cellsTotal -
                        pruned.stats.cellsPruned;
    }
    // Branch-and-bound must touch at most a third of the grid across
    // the whole constraint set (the ISSUE acceptance bar).
    EXPECT_GE(totalCells, touchedCells * 3)
        << "touched " << touchedCells << " of " << totalCells;
}

TEST(Constrained, PropertyRandomShapesMatchExhaustive)
{
    // Property-style equivalence: random workload shapes (stage
    // counts, task counts, IO mixes) and random constraints; the
    // pruned argmin/cost/runtime must always equal the exhaustive
    // reference. Any monotonicity violation the guard detects turns
    // into a (counted) exhaustive fallback, never a wrong answer.
    Rng rng(20260809);
    const auto randomBetween = [&rng](double lo, double hi) {
        return lo + (hi - lo) * rng.uniform();
    };
    for (int trial = 0; trial < 12; ++trial) {
        model::AppModel app;
        app.name = "random-" + std::to_string(trial);
        const int stages = 1 + static_cast<int>(rng.uniform() * 3.0);
        for (int s = 0; s < stages; ++s) {
            model::StageModel stage;
            stage.name = "s" + std::to_string(s);
            stage.tasks = 100 + static_cast<int>(rng.uniform() * 8000.0);
            stage.tAvg = randomBetween(2.0, 60.0);
            const int ios = static_cast<int>(rng.uniform() * 3.0);
            for (int k = 0; k < ios; ++k) {
                model::IoComponent io;
                io.op = rng.uniform() < 0.5
                            ? storage::IoOp::ShuffleWrite
                            : storage::IoOp::ShuffleRead;
                io.bytes = static_cast<Bytes>(
                    randomBetween(20.0, 400.0) * kGB);
                io.requestSize = randomBetween(2e4, 4e8);
                stage.io.push_back(io);
            }
            app.stages.push_back(stage);
        }
        CostOptimizer::Options options;
        options.sizeGrid = {250 * kGB, 500 * kGB, 1000 * kGB,
                            2000 * kGB, 4000 * kGB};
        const CostOptimizer opt(app, GcpPricing{}, options);

        const double minRuntime = opt.optimizeExhaustive(
            Constraint::fastestUnderBudget(1e9)).best.seconds;
        const double minCost =
            opt.optimizeExhaustive(Constraint::minCost()).best.cost;
        const Constraint cases[] = {
            Constraint::cheapestUnderDeadline(
                minRuntime * randomBetween(0.8, 3.0)),
            Constraint::fastestUnderBudget(
                minCost * randomBetween(0.8, 3.0)),
            Constraint::minCost(),
        };
        for (const Constraint &constraint : cases) {
            expectIdentical(opt.optimizeConstrained(constraint),
                            opt.optimizeExhaustive(constraint));
        }
    }
}

TEST(Constrained, MonotonicityViolationFallsBackToExhaustive)
{
    // Manufacture a non-monotone surface: the largest local disk gets
    // an artificial slowdown, so a sub-grid's "fast" corner is slower
    // than its "slow" corner. The guard must detect it, abandon
    // pruning, count the fallback — and still match the exhaustive
    // answer on the same poisoned surface.
    CostOptimizer::Options options;
    options.sizeGrid = {250 * kGB, 1000 * kGB, 4000 * kGB};
    const Bytes poisoned = options.sizeGrid.back();
    options.secondsHook = [poisoned](const CloudConfig &config,
                                     double seconds) {
        return config.localSize == poisoned ? seconds * 4.0 : seconds;
    };
    const CostOptimizer opt(syntheticApp(), GcpPricing{}, options);

    const Constraint constraint = Constraint::cheapestUnderDeadline(
        opt.optimizeExhaustive(Constraint::fastestUnderBudget(1e9))
            .best.seconds *
        1.5);
    const ConstrainedResult pruned = opt.optimizeConstrained(constraint);
    const ConstrainedResult exhaustive =
        opt.optimizeExhaustive(constraint);
    expectIdentical(pruned, exhaustive);
    EXPECT_GE(pruned.stats.exhaustiveFallbacks, 1u);
    EXPECT_EQ(pruned.stats.cellsPruned, 0u);
}

TEST(Constrained, UnsortedSizeGridFallsBackToExhaustive)
{
    CostOptimizer::Options options;
    options.sizeGrid = {1000 * kGB, 250 * kGB, 4000 * kGB};
    const CostOptimizer opt(syntheticApp(), GcpPricing{}, options);
    const Constraint constraint =
        Constraint::cheapestUnderDeadline(1e9);
    const ConstrainedResult pruned = opt.optimizeConstrained(constraint);
    expectIdentical(pruned, opt.optimizeExhaustive(constraint));
    EXPECT_GE(pruned.stats.exhaustiveFallbacks, 1u);
}

TEST(Constrained, InfeasibleConstraintsAgree)
{
    const CostOptimizer opt = makeOptimizer();
    for (const Constraint &constraint :
         {Constraint::cheapestUnderDeadline(1e-6),
          Constraint::fastestUnderBudget(1e-6)}) {
        EXPECT_FALSE(opt.optimizeConstrained(constraint).feasible);
        EXPECT_FALSE(opt.optimizeExhaustive(constraint).feasible);
    }
}

TEST(Constrained, InvalidConstraintsFatal)
{
    const CostOptimizer opt = makeOptimizer();
    EXPECT_THROW(
        opt.optimizeConstrained(Constraint::cheapestUnderDeadline(0.0)),
        FatalError);
    EXPECT_THROW(
        opt.optimizeConstrained(Constraint::fastestUnderBudget(-1.0)),
        FatalError);
    EXPECT_THROW(
        opt.optimizeExhaustive(Constraint::cheapestUnderDeadline(0.0)),
        FatalError);
}

TEST(Memo, RepeatedCellsAreServedFromTheMemo)
{
    const CostOptimizer opt = makeOptimizer();
    CloudConfig config;
    config.workers = 10;
    config.vcpus = 16;
    config.hdfsSize = 1000 * kGB;
    config.localSize = 2000 * kGB;
    const Evaluation first = opt.evaluate(config);
    const SearchStats afterFirst = opt.searchStats();
    EXPECT_EQ(afterFirst.cellsEvaluated, 1u);
    EXPECT_EQ(afterFirst.memoHits, 0u);
    const Evaluation second = opt.evaluate(config);
    const SearchStats afterSecond = opt.searchStats();
    EXPECT_EQ(afterSecond.cellsEvaluated, 1u);
    EXPECT_EQ(afterSecond.memoHits, 1u);
    EXPECT_EQ(first.seconds, second.seconds);
    EXPECT_EQ(first.cost, second.cost);

    // A whole repeated sweep is free: optimize() twice evaluates the
    // grid once.
    const Evaluation a = opt.optimize();
    const std::uint64_t evaluatedAfterSweep =
        opt.searchStats().cellsEvaluated;
    const Evaluation b = opt.optimize();
    EXPECT_EQ(opt.searchStats().cellsEvaluated, evaluatedAfterSweep);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.cost, b.cost);
}

TEST(Memo, DisabledMemoStillGivesIdenticalAnswers)
{
    CostOptimizer::Options plain;
    CostOptimizer::Options noMemo;
    noMemo.memoCapacity = 0;
    const CostOptimizer with(syntheticApp(), GcpPricing{}, plain);
    const CostOptimizer without(syntheticApp(), GcpPricing{}, noMemo);
    const Constraint constraint = Constraint::cheapestUnderDeadline(
        with.optimizeExhaustive(Constraint::fastestUnderBudget(1e9))
            .best.seconds *
        1.2);
    expectIdentical(with.optimizeConstrained(constraint),
                    without.optimizeConstrained(constraint));
    EXPECT_EQ(without.searchStats().memoHits, 0u);
}

TEST(Memo, CopiedOptimizerStartsCold)
{
    const CostOptimizer original = makeOptimizer();
    original.optimize(); // warm the memo and the stats
    const CostOptimizer copy = original;
    // Stats carry over (they are history), the memo does not (it is a
    // cache whose index would alias the source list if copied).
    EXPECT_EQ(copy.searchStats().cellsEvaluated,
              original.searchStats().cellsEvaluated);
    const std::uint64_t hitsBefore = copy.searchStats().memoHits;
    CloudConfig config;
    config.workers = 10;
    config.vcpus = 16;
    config.hdfsSize = 1000 * kGB;
    config.localSize = 2000 * kGB;
    copy.evaluate(config);
    // First touch on the copy is a miss — its memo started empty.
    EXPECT_EQ(copy.searchStats().memoHits, hitsBefore);
}

TEST(Optimizer, DeterministicAcrossJobCounts)
{
    // Satellite check for the tablesFor "first insert wins" comment:
    // one optimizer instance per job count, each sweeping its full
    // grid from a cold table cache with racing parallel fills. Every
    // evaluation must be byte-identical to the serial sweep — the
    // discarded racer was an identical copy, never a different table.
    CostOptimizer::Options options;
    options.sizeGrid = {250 * kGB, 500 * kGB, 1000 * kGB, 2000 * kGB};
    options.jobs = 1;
    const CostOptimizer serial(syntheticApp(), GcpPricing{}, options);
    const std::vector<CloudConfig> grid = serial.candidateGrid();
    const std::vector<Evaluation> reference = serial.evaluateAll(grid);
    for (const int jobs : {2, 4, 8}) {
        options.jobs = jobs;
        const CostOptimizer threaded(syntheticApp(), GcpPricing{},
                                     options);
        const std::vector<Evaluation> got = threaded.evaluateAll(grid);
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].seconds, reference[i].seconds)
                << "jobs=" << jobs << " cell " << i;
            EXPECT_EQ(got[i].cost, reference[i].cost)
                << "jobs=" << jobs << " cell " << i;
        }
    }
}

TEST(Optimizer, CopiesAreIndependent)
{
    // The fio-table cache moved behind a mutex+unique_ptr; copying
    // must deep-copy the cache and still work standalone.
    const CostOptimizer original = makeOptimizer();
    CloudConfig config;
    config.workers = 10;
    config.vcpus = 16;
    config.hdfsSize = 1000 * kGB;
    config.localSize = 2000 * kGB;
    const Evaluation before = original.evaluate(config);
    const CostOptimizer copy = original; // after the cache is warm
    const Evaluation after = copy.evaluate(config);
    EXPECT_EQ(before.seconds, after.seconds);
    EXPECT_EQ(before.cost, after.cost);
}

} // namespace
} // namespace doppio::cloud
