/**
 * @file
 * Unit tests for model-driven job scheduling (the paper's suggested
 * scheduler application, §I).
 */

#include <gtest/gtest.h>

#include "model/job_scheduler.h"

namespace doppio::model {
namespace {

std::vector<QueuedJob>
threeJobs()
{
    // Arrival order: long, short, medium.
    return {{"long", 100.0, 100.0},
            {"short", 10.0, 10.0},
            {"medium", 40.0, 40.0}};
}

TEST(JobScheduler, FifoKeepsArrivalOrder)
{
    const ScheduleResult r = scheduleFifo(threeJobs());
    EXPECT_EQ(r.order,
              (std::vector<std::string>{"long", "short", "medium"}));
    // Completions: 100, 110, 150.
    EXPECT_DOUBLE_EQ(r.completionSeconds[0], 100.0);
    EXPECT_DOUBLE_EQ(r.completionSeconds[2], 150.0);
    EXPECT_DOUBLE_EQ(r.makespanSeconds, 150.0);
    // Waits: 0 + 100 + 110.
    EXPECT_DOUBLE_EQ(r.totalWaitSeconds, 210.0);
    EXPECT_NEAR(r.meanCompletionSeconds, (100 + 110 + 150) / 3.0,
                1e-9);
}

TEST(JobScheduler, SpfOrdersByPrediction)
{
    const ScheduleResult r =
        scheduleShortestPredictedFirst(threeJobs());
    EXPECT_EQ(r.order,
              (std::vector<std::string>{"short", "medium", "long"}));
    // Waits: 0 + 10 + 50 = 60 << FIFO's 210.
    EXPECT_DOUBLE_EQ(r.totalWaitSeconds, 60.0);
}

TEST(JobScheduler, MakespanInvariantUnderOrdering)
{
    // Ordering cannot change total work.
    const ScheduleResult fifo = scheduleFifo(threeJobs());
    const ScheduleResult spf =
        scheduleShortestPredictedFirst(threeJobs());
    EXPECT_DOUBLE_EQ(fifo.makespanSeconds, spf.makespanSeconds);
}

TEST(JobScheduler, SpfNeverWorseThanFifoWithPerfectPredictions)
{
    // SPT-optimality of mean completion time.
    std::vector<QueuedJob> jobs;
    for (int i = 0; i < 20; ++i) {
        const double t = static_cast<double>((i * 37) % 101 + 1);
        jobs.push_back({"job" + std::to_string(i), t, t});
    }
    const ScheduleResult fifo = scheduleFifo(jobs);
    const ScheduleResult spf = scheduleShortestPredictedFirst(jobs);
    EXPECT_LE(spf.totalWaitSeconds, fifo.totalWaitSeconds);
}

TEST(JobScheduler, ChargesActualNotPredictedTime)
{
    // A mispredicted job still pays its actual runtime.
    std::vector<QueuedJob> jobs = {{"a", 1.0, 50.0}, {"b", 2.0, 2.0}};
    const ScheduleResult r = scheduleShortestPredictedFirst(jobs);
    EXPECT_EQ(r.order.front(), "a"); // ordered by prediction
    EXPECT_DOUBLE_EQ(r.completionSeconds[0], 50.0); // pays actual
    EXPECT_DOUBLE_EQ(r.makespanSeconds, 52.0);
}

TEST(JobScheduler, StableOnEqualPredictions)
{
    std::vector<QueuedJob> jobs = {
        {"a", 5.0, 5.0}, {"b", 5.0, 7.0}, {"c", 5.0, 3.0}};
    const ScheduleResult r = scheduleShortestPredictedFirst(jobs);
    EXPECT_EQ(r.order, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(JobScheduler, EmptyQueue)
{
    const ScheduleResult r = scheduleFifo({});
    EXPECT_TRUE(r.order.empty());
    EXPECT_DOUBLE_EQ(r.totalWaitSeconds, 0.0);
    EXPECT_DOUBLE_EQ(r.makespanSeconds, 0.0);
    EXPECT_DOUBLE_EQ(r.meanCompletionSeconds, 0.0);
}

/**
 * Property: with noisy predictions (multiplicative error), SPF's
 * advantage degrades but remains non-catastrophic — ordering by a
 * within-10% prediction (the paper's error bound) keeps nearly the
 * full benefit.
 */
class SpfNoise : public ::testing::TestWithParam<double>
{};

TEST_P(SpfNoise, TenPercentErrorKeepsMostOfTheBenefit)
{
    const double noise = GetParam();
    std::vector<QueuedJob> jobs;
    for (int i = 0; i < 30; ++i) {
        const double actual = static_cast<double>((i * 61) % 223 + 5);
        // Deterministic +/- noise.
        const double factor = (i % 2 == 0) ? 1.0 + noise : 1.0 - noise;
        jobs.push_back(
            {"job" + std::to_string(i), actual * factor, actual});
    }
    const double fifo = scheduleFifo(jobs).totalWaitSeconds;
    const double spf_noisy =
        scheduleShortestPredictedFirst(jobs).totalWaitSeconds;
    // Perfect-information SPF for reference.
    for (QueuedJob &job : jobs)
        job.predictedSeconds = job.actualSeconds;
    const double spf_oracle =
        scheduleShortestPredictedFirst(jobs).totalWaitSeconds;
    EXPECT_LE(spf_noisy, fifo);
    // Within 5% of the oracle at paper-level (<=10%) error.
    if (noise <= 0.10) {
        EXPECT_LE(spf_noisy, spf_oracle * 1.05);
    }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, SpfNoise,
                         ::testing::Values(0.0, 0.05, 0.10, 0.25));

} // namespace
} // namespace doppio::model
