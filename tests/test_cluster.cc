/**
 * @file
 * Unit tests for cluster configuration and construction.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/cluster_config.h"
#include "common/logging.h"
#include "sim/simulator.h"

namespace doppio::cluster {
namespace {

TEST(ClusterConfig, MotivationClusterMatchesPaper)
{
    // §III: four nodes, one master -> three slaves, 36 cores each.
    const ClusterConfig c = ClusterConfig::motivationCluster();
    EXPECT_EQ(c.numSlaves, 3);
    EXPECT_EQ(c.node.cores, 36);
    EXPECT_EQ(c.node.ram, 128 * kGiB);
    EXPECT_EQ(c.node.executorMemory, 90 * kGiB);
}

TEST(ClusterConfig, EvaluationClusterMatchesPaper)
{
    // §V: eleven nodes, one master -> ten slaves.
    const ClusterConfig c = ClusterConfig::evaluationCluster();
    EXPECT_EQ(c.numSlaves, 10);
}

TEST(ClusterConfig, StorageMemoryIs40PercentOfExecutor)
{
    const ClusterConfig c = ClusterConfig::motivationCluster();
    EXPECT_EQ(c.node.storageMemory(), static_cast<Bytes>(0.4 * 90) *
                                          kGiB);
}

TEST(ClusterConfig, HybridNames)
{
    EXPECT_EQ(HybridConfig::config1().name(), "HDFS=SSD/Local=SSD");
    EXPECT_EQ(HybridConfig::config2().name(), "HDFS=HDD/Local=SSD");
    EXPECT_EQ(HybridConfig::config3().name(), "HDFS=SSD/Local=HDD");
    EXPECT_EQ(HybridConfig::config4().name(), "HDFS=HDD/Local=HDD");
}

TEST(ClusterConfig, ApplyHybridSetsDiskTypes)
{
    ClusterConfig c = ClusterConfig::motivationCluster();
    c.applyHybrid(HybridConfig::config3());
    EXPECT_EQ(c.node.hdfsDisk.type, storage::DiskType::Ssd);
    EXPECT_EQ(c.node.localDisk.type, storage::DiskType::Hdd);
}

TEST(Cluster, ConstructsNodesAndNetwork)
{
    sim::Simulator sim;
    Cluster cluster(sim, ClusterConfig::motivationCluster());
    EXPECT_EQ(cluster.numSlaves(), 3);
    EXPECT_EQ(cluster.network().numNodes(), 3);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(cluster.node(i).id(), i);
        EXPECT_EQ(cluster.node(i).cores(), 36);
    }
}

TEST(Cluster, NodesOwnSeparateDisks)
{
    sim::Simulator sim;
    Cluster cluster(sim, ClusterConfig::motivationCluster());
    EXPECT_NE(&cluster.node(0).hdfsDisk(), &cluster.node(0).localDisk());
    EXPECT_NE(&cluster.node(0).hdfsDisk(), &cluster.node(1).hdfsDisk());
}

TEST(Cluster, TotalStorageMemoryScalesWithSlaves)
{
    sim::Simulator sim;
    ClusterConfig config = ClusterConfig::evaluationCluster();
    Cluster cluster(sim, config);
    EXPECT_EQ(cluster.totalStorageMemory(),
              10 * config.node.storageMemory());
}

TEST(Cluster, InvalidConfigFatal)
{
    sim::Simulator sim;
    ClusterConfig bad = ClusterConfig::motivationCluster();
    bad.numSlaves = 0;
    EXPECT_THROW(Cluster(sim, bad), FatalError);
    bad = ClusterConfig::motivationCluster();
    bad.node.cores = 0;
    EXPECT_THROW(Cluster(sim, bad), FatalError);
}

TEST(Cluster, DefaultNetworkIsTenGbps)
{
    const ClusterConfig c = ClusterConfig::motivationCluster();
    EXPECT_NEAR(c.networkBandwidth, gibps(1.25), 1.0);
}

} // namespace
} // namespace doppio::cluster
