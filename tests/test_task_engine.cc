/**
 * @file
 * Unit tests for the task execution engine.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "dfs/hdfs.h"
#include "sim/simulator.h"
#include "spark/task_engine.h"

namespace doppio::spark {
namespace {

/** Test fixture with a small deterministic cluster (no jitter). */
class TaskEngineTest : public ::testing::Test
{
  protected:
    TaskEngineTest() { config_.taskJitterSigma = 0.0; }

    /** Build the runtime lazily so tests can tweak configs first. */
    void
    start()
    {
        cluster_ =
            std::make_unique<cluster::Cluster>(sim_, config_);
        hdfs_ = std::make_unique<dfs::Hdfs>(*cluster_);
        engine_ = std::make_unique<TaskEngine>(*cluster_, *hdfs_, conf_);
    }

    static StageSpec
    computeStage(int tasks, double seconds)
    {
        StageSpec stage;
        stage.name = "compute";
        stage.groups.push_back(TaskGroupSpec{
            "g", tasks, {ComputePhaseSpec{seconds}}, 0});
        return stage;
    }

    sim::Simulator sim_;
    cluster::ClusterConfig config_ =
        cluster::ClusterConfig::motivationCluster();
    SparkConf conf_;
    std::unique_ptr<cluster::Cluster> cluster_;
    std::unique_ptr<dfs::Hdfs> hdfs_;
    std::unique_ptr<TaskEngine> engine_;
};

TEST_F(TaskEngineTest, SingleComputeTaskDuration)
{
    conf_.executorCores = 1;
    start();
    const StageMetrics m = engine_->runStage(computeStage(1, 10.0));
    EXPECT_EQ(m.numTasks, 1);
    EXPECT_NEAR(m.seconds(), 10.0 + conf_.taskDispatchOverheadSec,
                0.01);
    EXPECT_NEAR(m.taskDuration.mean(), 10.0, 0.1);
}

TEST_F(TaskEngineTest, PerfectScalingWithCores)
{
    // M/(N*P) batches of equal tasks.
    conf_.executorCores = 4;
    start();
    // 24 tasks over 3 nodes x 4 cores = 2 batches.
    const StageMetrics m = engine_->runStage(computeStage(24, 5.0));
    EXPECT_NEAR(m.seconds(), 2 * 5.0, 0.2);
}

TEST_F(TaskEngineTest, EffectiveCoresClampedToNodeCores)
{
    conf_.executorCores = 100;
    start();
    EXPECT_EQ(engine_->effectiveCores(), 36);
}

TEST_F(TaskEngineTest, GcSensitivityScalesCompute)
{
    conf_.executorCores = 11;
    start();
    StageSpec stage = computeStage(33, 1.0);
    stage.gcSensitivity = 0.5; // factor 1 + 0.5*10 = 6
    const StageMetrics m = engine_->runStage(stage);
    EXPECT_NEAR(m.seconds(), 6.0, 0.3);
}

TEST_F(TaskEngineTest, ReadLimitedStageMatchesEquation)
{
    // Many tasks reading 30 KiB chunks from the local HDD: the stage
    // must take D / (N * BW_eff) with BW_eff ~ 15 MB/s (Eq. 1).
    config_.applyHybrid(cluster::HybridConfig::config4()); // 2HDD
    conf_.executorCores = 36;
    start();
    StageSpec stage;
    stage.name = "read";
    IoPhaseSpec io;
    io.op = storage::IoOp::PersistRead;
    io.bytesPerTask = mib(27);
    io.requestSize = kib(30);
    stage.groups.push_back(TaskGroupSpec{"g", 300, {io}, 0});
    const StageMetrics m = engine_->runStage(stage);
    const double d = 300.0 * static_cast<double>(mib(27));
    const double expected = d / (3.0 * 15.0 * 1024 * 1024);
    EXPECT_NEAR(m.seconds(), expected, expected * 0.1);
}

TEST_F(TaskEngineTest, StageMetricsAccounting)
{
    conf_.executorCores = 36;
    start();
    StageSpec stage;
    stage.name = "io";
    IoPhaseSpec io;
    io.op = storage::IoOp::ShuffleWrite;
    io.bytesPerTask = mib(64);
    io.requestSize = mib(16);
    io.cpuPerByte = 1e-9; // serialization, recorded as phase time
    stage.groups.push_back(TaskGroupSpec{"g", 10, {io}, 0});
    const StageMetrics m = engine_->runStage(stage);
    const StageIoStats &stats = m.forOp(storage::IoOp::ShuffleWrite);
    EXPECT_EQ(stats.bytes, 10 * mib(64));
    EXPECT_EQ(stats.requests, 40ULL);
    EXPECT_NEAR(stats.avgRequestSize(),
                static_cast<double>(mib(16)), 1.0);
    EXPECT_EQ(m.totalBytes(storage::IoKind::Write), 10 * mib(64));
    EXPECT_EQ(m.totalBytes(storage::IoKind::Read), 0ULL);
    EXPECT_EQ(stats.phaseSeconds.count(), 10ULL);
    EXPECT_GT(stats.phaseSeconds.mean(), 0.0);
}

TEST_F(TaskEngineTest, ShuffleReadSpreadsOverAllNodes)
{
    conf_.executorCores = 12;
    start();
    StageSpec stage;
    stage.name = "shuffle";
    IoPhaseSpec io;
    io.op = storage::IoOp::ShuffleRead;
    io.bytesPerTask = mib(27);
    io.requestSize = kib(30);
    io.fanIn = 900;
    stage.groups.push_back(TaskGroupSpec{"g", 90, {io}, 0});
    engine_->runStage(stage);
    for (int n = 0; n < 3; ++n) {
        const Bytes read = cluster_->node(n)
                               .localDisk()
                               .stats()
                               .forOp(storage::IoOp::ShuffleRead)
                               .bytes;
        // Roughly a third each.
        EXPECT_NEAR(static_cast<double>(read),
                    90.0 * static_cast<double>(mib(27)) / 3.0,
                    0.1 * 90.0 * static_cast<double>(mib(27)) / 3.0);
    }
    // Remote portions crossed the network: ~(N-1)/N of the data.
    EXPECT_NEAR(static_cast<double>(cluster_->network().remoteBytes()),
                90.0 * static_cast<double>(mib(27)) * 2.0 / 3.0,
                0.15 * 90.0 * static_cast<double>(mib(27)));
}

TEST_F(TaskEngineTest, MultiGroupStageRunsAllTasks)
{
    conf_.executorCores = 36;
    start();
    StageSpec stage;
    stage.name = "multi";
    stage.groups.push_back(TaskGroupSpec{
        "a", 20, {ComputePhaseSpec{1.0}}, 0});
    stage.groups.push_back(TaskGroupSpec{
        "b", 30, {ComputePhaseSpec{0.5}}, 0});
    const StageMetrics m = engine_->runStage(stage);
    EXPECT_EQ(m.numTasks, 50);
    EXPECT_EQ(m.taskDuration.count(), 50ULL);
}

TEST_F(TaskEngineTest, EmptyPhaseListStillCompletes)
{
    conf_.executorCores = 2;
    start();
    StageSpec stage;
    stage.name = "noop";
    stage.groups.push_back(TaskGroupSpec{"g", 10, {}, 0});
    const StageMetrics m = engine_->runStage(stage);
    EXPECT_EQ(m.numTasks, 10);
    // Just dispatch overhead.
    EXPECT_LT(m.seconds(), 1.0);
}

TEST_F(TaskEngineTest, JitterPreservesMeanRuntime)
{
    config_.taskJitterSigma = 0.1;
    conf_.executorCores = 36;
    start();
    const StageMetrics m = engine_->runStage(computeStage(360, 2.0));
    EXPECT_NEAR(m.taskDuration.mean(), 2.0, 0.1);
    EXPECT_GT(m.taskDuration.stddev(), 0.0);
}

/**
 * Property: aggregated-batch mode matches the exact per-chunk
 * simulation on stage makespan within a few percent, across operation
 * types (the core equivalence claim of DiskDevice::submitBatch).
 */
class IoModeEquivalence
    : public ::testing::TestWithParam<storage::IoOp>
{};

TEST_P(IoModeEquivalence, AggregateMatchesExact)
{
    const storage::IoOp op = GetParam();
    auto run = [op](bool aggregate) {
        sim::Simulator sim;
        cluster::ClusterConfig config =
            cluster::ClusterConfig::motivationCluster();
        config.taskJitterSigma = 0.0;
        config.applyHybrid(cluster::HybridConfig::config4());
        cluster::Cluster cluster(sim, config);
        dfs::Hdfs hdfs(cluster);
        SparkConf conf;
        conf.executorCores = 8;
        conf.aggregateIo = aggregate;
        TaskEngine engine(cluster, hdfs, conf);
        StageSpec stage;
        stage.name = "io";
        IoPhaseSpec io;
        io.op = op;
        io.bytesPerTask = mib(8);
        io.requestSize = kib(256);
        io.cpuPerByte = 1e-9;
        io.fanIn = 64;
        stage.groups.push_back(TaskGroupSpec{"g", 48, {io}, 0});
        return engine.runStage(stage).seconds();
    };
    const double exact = run(false);
    const double aggregated = run(true);
    EXPECT_NEAR(aggregated, exact, exact * 0.15)
        << "op " << storage::ioOpName(op);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, IoModeEquivalence,
    ::testing::Values(storage::IoOp::HdfsRead, storage::IoOp::HdfsWrite,
                      storage::IoOp::ShuffleRead,
                      storage::IoOp::ShuffleWrite,
                      storage::IoOp::PersistRead,
                      storage::IoOp::PersistWrite));

} // namespace
} // namespace doppio::spark
