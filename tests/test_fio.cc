/**
 * @file
 * Unit and property tests for the fio-style profiler (paper Fig. 5).
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/units.h"
#include "storage/fio.h"

namespace doppio::storage {
namespace {

TEST(Fio, MeasuredBandwidthMatchesClosedFormHdd)
{
    const DiskParams hdd = makeHddParams();
    const FioProfiler profiler(hdd);
    for (Bytes rs : {kib(4), kib(30), mib(1), mib(128)}) {
        const FioResult r = profiler.measure(IoKind::Read, rs);
        const double expected = hdd.effectiveBandwidth(IoKind::Read, rs);
        EXPECT_NEAR(r.bandwidth, expected, expected * 0.15)
            << "request size " << rs;
    }
}

TEST(Fio, MeasuredBandwidthMatchesClosedFormSsd)
{
    const DiskParams ssd = makeSsdParams();
    const FioProfiler profiler(ssd);
    for (Bytes rs : {kib(4), kib(30), mib(1), mib(128)}) {
        const FioResult r = profiler.measure(IoKind::Read, rs);
        const double expected = ssd.effectiveBandwidth(IoKind::Read, rs);
        EXPECT_NEAR(r.bandwidth, expected, expected * 0.15)
            << "request size " << rs;
    }
}

TEST(Fio, Paper30KAnchors)
{
    // Fig. 5: 15 MB/s (HDD) vs 480 MB/s (SSD) at 30 KB -> 32x.
    const FioProfiler hdd(makeHddParams());
    const FioProfiler ssd(makeSsdParams());
    const double hdd_bw = hdd.measure(IoKind::Read, kib(30)).bandwidth;
    const double ssd_bw = ssd.measure(IoKind::Read, kib(30)).bandwidth;
    EXPECT_NEAR(toMiBps(hdd_bw), 15.0, 2.0);
    EXPECT_NEAR(toMiBps(ssd_bw), 480.0, 30.0);
    EXPECT_NEAR(ssd_bw / hdd_bw, 32.0, 5.0);
}

TEST(Fio, IopsConsistentWithBandwidth)
{
    const FioProfiler profiler(makeHddParams());
    const FioResult r = profiler.measure(IoKind::Read, kib(30));
    EXPECT_NEAR(r.iops * static_cast<double>(kib(30)), r.bandwidth,
                r.bandwidth * 0.01);
}

TEST(Fio, SweepCoversAllSizes)
{
    const FioProfiler profiler(makeSsdParams());
    const auto sizes = FioProfiler::defaultSweepSizes();
    const auto results = profiler.sweep(IoKind::Read, sizes);
    ASSERT_EQ(results.size(), sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i)
        EXPECT_EQ(results[i].requestSize, sizes[i]);
}

TEST(Fio, BandwidthTableMonotoneNondecreasing)
{
    const FioProfiler profiler(makeHddParams());
    const LookupTable table = profiler.bandwidthTable(IoKind::Read);
    double prev = 0.0;
    for (const auto &[x, y] : table.points()) {
        EXPECT_GE(y, prev * 0.99) << "at request size " << x;
        prev = y;
    }
}

TEST(Fio, WriteTableBelowOrEqualReadCeiling)
{
    const FioProfiler profiler(makeHddParams());
    const LookupTable write = profiler.bandwidthTable(IoKind::Write);
    EXPECT_NEAR(toMiBps(write.at(static_cast<double>(mib(365)))), 100.0,
                10.0);
}

TEST(Fio, InvalidConfigRejected)
{
    EXPECT_THROW(FioProfiler(makeHddParams(), {0, 64}), FatalError);
    EXPECT_THROW(FioProfiler(makeHddParams(), {32, 0}), FatalError);
    const FioProfiler ok(makeHddParams());
    EXPECT_THROW(ok.measure(IoKind::Read, 0), FatalError);
}

/**
 * Property sweep: for every request size, fio-measured bandwidth is
 * within 15% of the closed-form min(BW, IOPS * rs) oracle.
 */
class FioOracle : public ::testing::TestWithParam<Bytes>
{};

TEST_P(FioOracle, HddWithinTolerance)
{
    const DiskParams hdd = makeHddParams();
    const FioProfiler profiler(hdd);
    const Bytes rs = GetParam();
    const double expected = hdd.effectiveBandwidth(IoKind::Read, rs);
    const double measured =
        profiler.measure(IoKind::Read, rs).bandwidth;
    EXPECT_NEAR(measured, expected, expected * 0.15);
}

TEST_P(FioOracle, SsdWriteWithinTolerance)
{
    const DiskParams ssd = makeSsdParams();
    const FioProfiler profiler(ssd);
    const Bytes rs = GetParam();
    const double expected = ssd.effectiveBandwidth(IoKind::Write, rs);
    const double measured =
        profiler.measure(IoKind::Write, rs).bandwidth;
    EXPECT_NEAR(measured, expected, expected * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FioOracle,
                         ::testing::Values(kib(4), kib(8), kib(30),
                                           kib(128), mib(1), mib(27),
                                           mib(128), mib(365)));

} // namespace
} // namespace doppio::storage
