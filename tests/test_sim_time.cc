/**
 * @file
 * Unit tests for the simulated-time representation.
 */

#include <gtest/gtest.h>

#include "common/sim_time.h"

namespace doppio {
namespace {

TEST(SimTime, TickConstants)
{
    EXPECT_EQ(kTicksPerUs, 1000ULL);
    EXPECT_EQ(kTicksPerMs, 1000000ULL);
    EXPECT_EQ(kTicksPerSec, 1000000000ULL);
}

TEST(SimTime, SecondsRoundTrip)
{
    EXPECT_EQ(secondsToTicks(1.0), kTicksPerSec);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kTicksPerSec), 1.0);
    EXPECT_DOUBLE_EQ(ticksToSeconds(secondsToTicks(123.456)), 123.456);
}

TEST(SimTime, SubSecondConstructors)
{
    EXPECT_EQ(msToTicks(2.0), 2 * kTicksPerMs);
    EXPECT_EQ(usToTicks(80.0), 80 * kTicksPerUs);
    EXPECT_EQ(msToTicks(0.5), 500 * kTicksPerUs);
}

TEST(SimTime, RoundsToNearest)
{
    EXPECT_EQ(secondsToTicks(1e-9), 1ULL);
    EXPECT_EQ(secondsToTicks(1.4e-9), 1ULL);
    EXPECT_EQ(secondsToTicks(1.6e-9), 2ULL);
}

TEST(SimTime, Minutes)
{
    EXPECT_DOUBLE_EQ(ticksToMinutes(secondsToTicks(120.0)), 2.0);
}

TEST(SimTime, LongSimulationsRepresentable)
{
    // A 126-minute GATK4 stage (paper §III-C3) is far below overflow.
    const Tick t = secondsToTicks(126.0 * 60.0);
    EXPECT_LT(t, kTickNever / 1000);
    EXPECT_DOUBLE_EQ(ticksToMinutes(t), 126.0);
}

TEST(SimTime, FormatDurationAdaptiveUnits)
{
    EXPECT_EQ(formatDuration(usToTicks(5.0)), "5.00 us");
    EXPECT_EQ(formatDuration(msToTicks(2.0)), "2.00 ms");
    EXPECT_EQ(formatDuration(secondsToTicks(5.0)), "5.00 s");
    EXPECT_EQ(formatDuration(secondsToTicks(300.0)), "5.0 min");
}

} // namespace
} // namespace doppio
