/**
 * @file
 * Unit tests for task-trace collection and export.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "dfs/hdfs.h"
#include "sim/simulator.h"
#include "spark/spark_context.h"
#include "spark/task_trace.h"

namespace doppio::spark {
namespace {

TEST(TaskTrace, RecordsAndStageFilter)
{
    TaskTrace trace;
    trace.add({"MD", "g", 0, 1, 0, secondsToTicks(2.0)});
    trace.add({"BR", "g", 0, 2, 0, secondsToTicks(3.0)});
    trace.add({"MD", "g", 1, 0, secondsToTicks(1.0),
               secondsToTicks(4.0)});
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.forStage("MD").size(), 2u);
    EXPECT_EQ(trace.forStage("BR").size(), 1u);
    EXPECT_DOUBLE_EQ(trace.records()[2].seconds(), 3.0);
}

TEST(TaskTrace, TasksPerNode)
{
    TaskTrace trace;
    trace.add({"s", "g", 0, 0, 0, 1});
    trace.add({"s", "g", 1, 1, 0, 1});
    trace.add({"s", "g", 2, 1, 0, 1});
    const auto counts = trace.tasksPerNode(3);
    EXPECT_EQ(counts, (std::vector<int>{1, 2, 0}));
}

TEST(TaskTrace, TasksPerNodeSkipsFailedAttempts)
{
    TaskTrace trace;
    trace.add({"s", "g", 0, 0, 0, 1, 1, "crash"});
    trace.add({"s", "g", 0, 1, 0, 1, 2, "ok"});
    trace.add({"s", "g", 1, 0, 0, 1, 1, "lost-race"});
    const auto counts = trace.tasksPerNode(2);
    EXPECT_EQ(counts, (std::vector<int>{0, 1}));
}

TEST(TaskTrace, CsvFormat)
{
    TaskTrace trace;
    trace.add({"MD", "grp", 7, 2, secondsToTicks(1.0),
               secondsToTicks(2.5)});
    std::ostringstream os;
    trace.writeCsv(os);
    const std::string csv = os.str();
    // The first seven columns are the pre-attempt-tracking format;
    // attempt/status/sched_wait_s are appended.
    EXPECT_NE(csv.find("stage,group,task,node,start_s,end_s,"
                       "duration_s,attempt,status,sched_wait_s"),
              std::string::npos);
    EXPECT_NE(csv.find("MD,grp,7,2,1.000000,2.500000,1.500000,"
                       "1,ok,0.000000"),
              std::string::npos);
}

TEST(TaskTrace, CsvRecordsFailedAttempts)
{
    TaskTrace trace;
    trace.add({"MD", "grp", 3, 1, 0, secondsToTicks(0.5), 2,
               "node-loss", 0.25});
    std::ostringstream os;
    trace.writeCsv(os);
    EXPECT_NE(os.str().find("MD,grp,3,1,0.000000,0.500000,0.500000,"
                            "2,node-loss,0.250000"),
              std::string::npos);
}

TEST(TaskTrace, ClearResets)
{
    TaskTrace trace;
    trace.add({"s", "g", 0, 0, 0, 1});
    trace.clear();
    EXPECT_EQ(trace.size(), 0u);
}

TEST(TaskTrace, EngineRecordsEveryTask)
{
    sim::Simulator sim;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    cluster::Cluster cluster(sim, config);
    dfs::Hdfs hdfs(cluster);
    hdfs.addFile("input", gib(1));
    SparkContext context(cluster, hdfs, SparkConf{});
    TaskTrace trace;
    context.setTaskTrace(&trace);

    RddRef input = context.hadoopFile("input");
    context.runJob("count", input, ActionSpec::count());
    EXPECT_EQ(trace.size(), 8u); // 8 HDFS blocks -> 8 tasks
    // Round-robin placement spreads tasks over all three nodes.
    const auto counts = trace.tasksPerNode(3);
    for (int c : counts)
        EXPECT_GT(c, 0);
    // Timing sanity: every record ends after it starts, within the
    // stage window.
    for (const TaskRecord &record : trace.records()) {
        EXPECT_EQ(record.stage, "count");
        EXPECT_GT(record.end, record.start);
        // Fault-free run: every attempt is the first and wins.
        EXPECT_EQ(record.attempt, 1);
        EXPECT_TRUE(record.ok());
        EXPECT_GE(record.schedWaitSec, 0.0);
    }
}

TEST(TaskTrace, DetachStopsRecording)
{
    sim::Simulator sim;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    cluster::Cluster cluster(sim, config);
    dfs::Hdfs hdfs(cluster);
    hdfs.addFile("input", gib(1));
    SparkContext context(cluster, hdfs, SparkConf{});
    TaskTrace trace;
    context.setTaskTrace(&trace);
    RddRef input = context.hadoopFile("input");
    context.runJob("first", input, ActionSpec::count());
    context.setTaskTrace(nullptr);
    context.runJob("second", input, ActionSpec::count());
    EXPECT_EQ(trace.size(), 8u);
}

} // namespace
} // namespace doppio::spark
