/**
 * @file
 * Unit tests for the deterministic sweep executor (DESIGN.md §11).
 */

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"

namespace doppio::common {
namespace {

TEST(SweepRunner, ResolvesJobCounts)
{
    EXPECT_EQ(SweepRunner(1).jobs(), 1);
    EXPECT_EQ(SweepRunner(7).jobs(), 7);
    EXPECT_EQ(SweepRunner(0).jobs(), SweepRunner::hardwareJobs());
    EXPECT_EQ(SweepRunner(-3).jobs(), 1);
    EXPECT_GE(SweepRunner::hardwareJobs(), 1);
}

TEST(SweepRunner, MapPreservesInputOrder)
{
    for (int jobs : {1, 2, 4, 16}) {
        const SweepRunner runner(jobs);
        const std::vector<std::size_t> out =
            runner.map(100, [](std::size_t i) { return i * i; });
        ASSERT_EQ(out.size(), 100u);
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], i * i);
    }
}

TEST(SweepRunner, ResultsIdenticalAcrossJobCounts)
{
    auto sweep = [](int jobs) {
        // A non-trivial value so scrambled commit order would show.
        return SweepRunner(jobs).map(257, [](std::size_t i) {
            return std::to_string(i) + ":" + std::to_string(i * 31 % 97);
        });
    };
    const std::vector<std::string> serial = sweep(1);
    for (int jobs : {2, 3, 8})
        EXPECT_EQ(sweep(jobs), serial) << "jobs=" << jobs;
}

TEST(SweepRunner, ForEachVisitsEveryIndexOnce)
{
    const SweepRunner runner(8);
    std::vector<std::atomic<int>> visits(1000);
    runner.forEach(visits.size(),
                   [&](std::size_t i) { visits[i].fetch_add(1); });
    for (const std::atomic<int> &count : visits)
        EXPECT_EQ(count.load(), 1);
}

TEST(SweepRunner, EmptyAndSingletonSweeps)
{
    const SweepRunner runner(4);
    EXPECT_TRUE(runner.map(0, [](std::size_t) { return 1; }).empty());
    const std::vector<int> one =
        runner.map(1, [](std::size_t) { return 42; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 42);
}

TEST(SweepRunner, FirstExceptionByIndexIsRethrown)
{
    for (int jobs : {1, 4}) {
        const SweepRunner runner(jobs);
        try {
            runner.forEach(64, [](std::size_t i) {
                if (i == 17 || i == 40)
                    throw std::runtime_error("boom " +
                                             std::to_string(i));
            });
            FAIL() << "expected an exception (jobs=" << jobs << ")";
        } catch (const std::runtime_error &e) {
            // Deterministic: always the lowest-index failure.
            EXPECT_STREQ(e.what(), "boom 17");
        }
    }
}

TEST(SweepRunner, ExceptionDoesNotLoseCompletedWork)
{
    const SweepRunner runner(4);
    std::vector<std::atomic<int>> visits(64);
    EXPECT_THROW(runner.forEach(visits.size(),
                                [&](std::size_t i) {
                                    visits[i].fetch_add(1);
                                    if (i == 5)
                                        throw std::runtime_error("x");
                                }),
                 std::runtime_error);
    // The sweep drains before rethrowing: everything ran exactly once.
    for (const std::atomic<int> &count : visits)
        EXPECT_EQ(count.load(), 1);
}

} // namespace
} // namespace doppio::common
