/**
 * @file
 * Tests for the planning service's admission primitives: the LRU
 * cache (common/lru_cache.h) and the token bucket
 * (common/token_bucket.h), plus the sharded result cache and
 * single-flight registry built on them (src/service/cache.h).
 */

#include <string>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/lru_cache.h"
#include "common/token_bucket.h"
#include "service/cache.h"

using namespace doppio;

TEST(LruCache, RejectsZeroCapacity)
{
    EXPECT_THROW((common::LruCache<int, int>(0)), FatalError);
}

TEST(LruCache, CapacityOneEvictsOnEveryNewKey)
{
    common::LruCache<std::string, int> cache(1);
    cache.put("a", 1);
    EXPECT_TRUE(cache.contains("a"));
    cache.put("b", 2);
    EXPECT_FALSE(cache.contains("a"));
    EXPECT_TRUE(cache.contains("b"));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.evictions(), 1u);
    // Overwriting the sole entry is not an eviction.
    cache.put("b", 3);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(*cache.get("b"), 3);
}

TEST(LruCache, EvictionFollowsAccessOrderNotInsertionOrder)
{
    common::LruCache<std::string, int> cache(3);
    cache.put("a", 1);
    cache.put("b", 2);
    cache.put("c", 3);
    // Touch the oldest: "a" becomes MRU, "b" is now LRU.
    ASSERT_NE(cache.get("a"), nullptr);
    cache.put("d", 4);
    EXPECT_FALSE(cache.contains("b"));
    EXPECT_TRUE(cache.contains("a"));
    EXPECT_TRUE(cache.contains("c"));
    EXPECT_TRUE(cache.contains("d"));
    EXPECT_EQ(cache.keysMruToLru(),
              (std::vector<std::string>{"d", "a", "c"}));
}

TEST(LruCache, ReinsertionPromotesToMru)
{
    common::LruCache<std::string, int> cache(3);
    cache.put("a", 1);
    cache.put("b", 2);
    cache.put("c", 3);
    // Reinserting the LRU entry must move it to MRU, so the next
    // eviction takes "b" instead.
    cache.put("a", 10);
    cache.put("d", 4);
    EXPECT_FALSE(cache.contains("b"));
    EXPECT_EQ(*cache.get("a"), 10);
}

TEST(LruCache, PeekDoesNotPromote)
{
    common::LruCache<std::string, int> cache(2);
    cache.put("a", 1);
    cache.put("b", 2);
    ASSERT_NE(cache.peek("a"), nullptr);
    cache.put("c", 3); // "a" still LRU despite the peek
    EXPECT_FALSE(cache.contains("a"));
    EXPECT_TRUE(cache.contains("b"));
}

TEST(LruCache, CountsHitsMissesAndErase)
{
    common::LruCache<std::string, int> cache(2);
    EXPECT_EQ(cache.get("a"), nullptr);
    cache.put("a", 1);
    EXPECT_NE(cache.get("a"), nullptr);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_TRUE(cache.erase("a"));
    EXPECT_FALSE(cache.erase("a"));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(TokenBucket, RejectsBadParameters)
{
    EXPECT_THROW(common::TokenBucket(-1.0, 1.0), FatalError);
    EXPECT_THROW(common::TokenBucket(1.0, 0.0), FatalError);
}

TEST(TokenBucket, ZeroRateGrantsOnlyTheInitialBurst)
{
    common::TokenBucket bucket(0.0, 2.0);
    EXPECT_TRUE(bucket.tryAcquire(0.0));
    EXPECT_TRUE(bucket.tryAcquire(0.0));
    EXPECT_FALSE(bucket.tryAcquire(0.0));
    // No amount of elapsed time refills a zero-rate bucket.
    EXPECT_FALSE(bucket.tryAcquire(1e9));
    EXPECT_EQ(bucket.granted(), 2u);
    EXPECT_EQ(bucket.denied(), 2u);
}

TEST(TokenBucket, RefillsAtRateAndCapsAtBurst)
{
    common::TokenBucket bucket(2.0, 4.0); // 2 tokens/s, burst 4
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(bucket.tryAcquire(0.0));
    EXPECT_FALSE(bucket.tryAcquire(0.0));
    EXPECT_TRUE(bucket.tryAcquire(0.5)); // 0.5s * 2/s = 1 token
    EXPECT_FALSE(bucket.tryAcquire(0.5));
    // A long idle period refills to burst, not beyond.
    EXPECT_DOUBLE_EQ(bucket.available(100.0), 4.0);
}

TEST(TokenBucket, BackwardsTimeMintsNoTokens)
{
    common::TokenBucket bucket(1.0, 1.0);
    EXPECT_TRUE(bucket.tryAcquire(10.0));
    // A clock that jumps backwards must not refill.
    EXPECT_FALSE(bucket.tryAcquire(0.0));
    EXPECT_TRUE(bucket.tryAcquire(11.0));
}

TEST(ResultCache, ShardsArePinnedByFnv1aNotStdHash)
{
    // FNV-1a is fixed by definition; pin a value so a hash change
    // (which would silently reorder transcripts) fails loudly.
    EXPECT_EQ(service::ResultCache::fnv1a(""),
              14695981039346656037ULL);
    EXPECT_EQ(service::ResultCache::fnv1a("a"),
              12638187200555641996ULL);
}

TEST(ResultCache, AggregatesAcrossShards)
{
    service::ResultCache cache(4, 2);
    EXPECT_EQ(cache.get("missing"), nullptr);
    service::Response response;
    response.id = "r1";
    response.status = "ok";
    cache.put("k1", response);
    const service::Response *hit = cache.get("k1");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->id, "r1");
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(SingleFlight, LeaderThenFollowersThenFinish)
{
    service::SingleFlight flight;
    EXPECT_TRUE(flight.begin("k"));
    EXPECT_FALSE(flight.begin("k"));
    EXPECT_TRUE(flight.inFlight("k"));
    flight.attach("k", 7);
    flight.attach("k", 9);
    EXPECT_EQ(flight.joins(), 2u);
    EXPECT_EQ(flight.finish("k"), (std::vector<std::uint64_t>{7, 9}));
    EXPECT_FALSE(flight.inFlight("k"));
    EXPECT_TRUE(flight.finish("k").empty());
}
