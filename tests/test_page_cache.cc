/**
 * @file
 * Unit tests for the OS page-cache model and its cluster wiring.
 */

#include <string>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/units.h"
#include "oscache/page_cache.h"
#include "sim/simulator.h"
#include "spark/metrics_json.h"
#include "storage/disk_device.h"
#include "workloads/registry.h"
#include "workloads/terasort.h"

namespace doppio::oscache {
namespace {

/** The disk-device test fixture's round numbers. */
storage::DiskParams
simpleParams()
{
    storage::DiskParams p;
    p.model = "test";
    p.type = storage::DiskType::Hdd;
    p.readIops = 100.0; // 10 ms admission interval
    p.writeIops = 100.0;
    p.readLatency = msToTicks(10.0);
    p.writeLatency = msToTicks(10.0);
    p.readBandwidth = 1000.0 * kKiB; // 1000 KiB/s
    p.writeBandwidth = 500.0 * kKiB;
    return p;
}

/** Cache of 1000 KiB fronting one slow device, very fast memory. */
struct Fixture
{
    sim::Simulator sim;
    storage::DiskDevice disk{sim, simpleParams(), "d"};
    PageCacheConfig config;
    std::unique_ptr<PageCache> cache;

    explicit Fixture(Bytes capacity = 1000 * kKiB, Bytes readAhead = 0)
    {
        config.enabled = true;
        config.capacity = capacity;
        // Memory 1000x faster than the device: hit/absorb times are
        // negligible against device times in every assertion below.
        config.memoryBandwidth = 1000.0 * 1000.0 * kKiB;
        config.readAhead = readAhead;
        config.flushChunk = 100 * kKiB;
        auto pick = [this]() -> storage::DiskDevice & { return disk; };
        cache = std::make_unique<PageCache>(sim, config, pick, pick,
                                            "test/pagecache");
    }
};

TEST(PageCacheConfig, ValidateRejectsNonsense)
{
    PageCacheConfig config;
    config.capacity = 0;
    EXPECT_THROW(config.validate(), FatalError);
    config.capacity = kMiB;
    config.dirtyRatio = 0.05; // below background
    EXPECT_THROW(config.validate(), FatalError);
    config.dirtyRatio = 0.20;
    config.flushChunk = 0;
    EXPECT_THROW(config.validate(), FatalError);
}

TEST(PageCache, ColdReadCostsDeviceTime)
{
    Fixture f;
    Tick done = 0;
    f.cache->read(Role::Hdfs, storage::IoOp::HdfsRead, 1, 0, 100 * kKiB,
                  1, [&] { done = f.sim.now(); });
    f.sim.run();
    // 10 ms latency + 100/1000 s transfer, memcpy negligible.
    EXPECT_NEAR(ticksToSeconds(done), 0.010 + 0.100, 2e-3);
    EXPECT_EQ(f.cache->stats().missBytes, 100 * kKiB);
    EXPECT_EQ(f.cache->stats().hitBytes, 0ULL);
}

TEST(PageCache, WarmReadRunsAtMemorySpeed)
{
    Fixture f;
    Tick cold = 0;
    f.cache->read(Role::Hdfs, storage::IoOp::HdfsRead, 1, 0, 100 * kKiB,
                  1, [&] { cold = f.sim.now(); });
    f.sim.run();
    const Tick warm_start = f.sim.now();
    Tick warm_end = 0;
    f.cache->read(Role::Hdfs, storage::IoOp::HdfsRead, 1, 0, 100 * kKiB,
                  1, [&] { warm_end = f.sim.now(); });
    f.sim.run();
    const double cold_s = ticksToSeconds(cold);
    const double warm_s = ticksToSeconds(warm_end - warm_start);
    EXPECT_GT(warm_s, 0.0); // memory copy is charged, not free
    EXPECT_GT(cold_s / warm_s, 100.0);
    EXPECT_EQ(f.cache->stats().readFullHits, 1ULL);
    EXPECT_EQ(f.cache->stats().hitBytes, 100 * kKiB);
}

TEST(PageCache, HitsAreServedPerStream)
{
    Fixture f;
    f.cache->read(Role::Hdfs, storage::IoOp::HdfsRead, 1, 0, 100 * kKiB,
                  1, [] {});
    f.sim.run();
    // Same offsets, different stream: cold.
    f.cache->read(Role::Hdfs, storage::IoOp::HdfsRead, 2, 0, 100 * kKiB,
                  1, [] {});
    f.sim.run();
    EXPECT_EQ(f.cache->stats().readFullHits, 0ULL);
    EXPECT_EQ(f.cache->stats().missBytes, 200 * kKiB);
}

TEST(PageCache, SequentialReadAheadTurnsNextReadIntoHit)
{
    Fixture f(1000 * kKiB, /*readAhead=*/100 * kKiB);
    // Three back-to-back sequential chunks: the second read detects the
    // sequential pattern and prefetches the third's range.
    for (int i = 0; i < 3; ++i) {
        f.cache->read(Role::Hdfs, storage::IoOp::HdfsRead, 1,
                      static_cast<Bytes>(i) * 100 * kKiB, 100 * kKiB, 1,
                      [] {});
        f.sim.run();
    }
    EXPECT_EQ(f.cache->stats().readAheadBytes, 100 * kKiB);
    EXPECT_EQ(f.cache->stats().readFullHits, 1ULL);
    EXPECT_EQ(f.cache->stats().missBytes, 200 * kKiB);
}

TEST(PageCache, SmallWritesBelowBackgroundNeverTouchTheDevice)
{
    Fixture f; // background = 100 KiB, limit = 200 KiB
    Tick last = 0;
    for (int i = 0; i < 10; ++i) {
        f.cache->write(Role::Local, storage::IoOp::ShuffleWrite, 1,
                       static_cast<Bytes>(i) * 5 * kKiB, 5 * kKiB, 1,
                       [&] { last = f.sim.now(); });
    }
    f.sim.run();
    EXPECT_EQ(f.disk.stats().totalBytes(storage::IoKind::Write), 0ULL);
    EXPECT_EQ(f.cache->stats().absorbedBytes, 50 * kKiB);
    EXPECT_EQ(f.cache->stats().flushedBytes, 0ULL);
    EXPECT_EQ(f.cache->dirtyBytes(), 50 * kKiB);
    // All ten writes completed at memory speed.
    EXPECT_LT(ticksToSeconds(last), 0.001);
}

TEST(PageCache, BackgroundWritebackDrainsAboveThreshold)
{
    Fixture f;
    Tick writer_done = 0;
    f.cache->write(Role::Local, storage::IoOp::ShuffleWrite, 1, 0,
                   150 * kKiB, 1, [&] { writer_done = f.sim.now(); });
    f.sim.run();
    // The writer itself completed at memory speed...
    EXPECT_LT(ticksToSeconds(writer_done), 0.001);
    // ...while the flusher drained dirty bytes down to the background
    // threshold through the device.
    EXPECT_LE(f.cache->dirtyBytes(), 100 * kKiB);
    EXPECT_GE(f.cache->stats().flushedBytes, 50 * kKiB);
    EXPECT_EQ(f.disk.stats().totalBytes(storage::IoKind::Write),
              f.cache->stats().flushedBytes);
}

TEST(PageCache, WritersThrottleAtTheDirtyLimit)
{
    Fixture f; // limit = 200 KiB
    Tick last = 0;
    int completed = 0;
    for (int i = 0; i < 5; ++i) {
        f.cache->write(Role::Local, storage::IoOp::ShuffleWrite, 1,
                       static_cast<Bytes>(i) * 60 * kKiB, 60 * kKiB, 1,
                       [&] {
                           ++completed;
                           last = f.sim.now();
                       });
    }
    f.sim.run();
    EXPECT_EQ(completed, 5);
    EXPECT_EQ(f.cache->stats().throttledWrites, 2ULL);
    EXPECT_EQ(f.cache->stats().absorbedBytes, 180 * kKiB);
    // The throttled writers waited on device-speed writeback: far
    // slower than the memory-speed absorption path.
    EXPECT_GT(ticksToSeconds(last), 0.050);
}

TEST(PageCache, OversizeWriteGoesAroundTheCache)
{
    Fixture f; // limit = 200 KiB
    f.cache->write(Role::Local, storage::IoOp::ShuffleWrite, 1, 0,
                   300 * kKiB, 1, [] {});
    f.sim.run();
    EXPECT_EQ(f.cache->stats().writeAroundBytes, 300 * kKiB);
    EXPECT_EQ(f.cache->dirtyBytes(), 0ULL);
    EXPECT_EQ(f.disk.stats().totalBytes(storage::IoKind::Write),
              300 * kKiB);
}

TEST(PageCache, LruEvictsTheColdestStream)
{
    Fixture f(250 * kKiB);
    auto read = [&f](std::uint64_t stream) {
        f.cache->read(Role::Hdfs, storage::IoOp::HdfsRead, stream, 0,
                      100 * kKiB, 1, [] {});
        f.sim.run();
    };
    read(1);       // A
    read(2);       // B
    read(1);       // touch A -> B is now the LRU victim
    read(3);       // C: evicts B, not A
    EXPECT_EQ(f.cache->stats().evictedBytes, 100 * kKiB);
    const std::uint64_t hits_before = f.cache->stats().readFullHits;
    read(1); // A still resident
    EXPECT_EQ(f.cache->stats().readFullHits, hits_before + 1);
    read(2); // B was evicted
    EXPECT_EQ(f.cache->stats().readFullHits, hits_before + 1);
}

TEST(PageCache, DirtyDataIsReadableBeforeWriteback)
{
    Fixture f;
    f.cache->write(Role::Local, storage::IoOp::ShuffleWrite, 1, 0,
                   50 * kKiB, 1, [] {});
    f.sim.run();
    Tick start = f.sim.now();
    Tick end = 0;
    f.cache->read(Role::Local, storage::IoOp::ShuffleRead, 1, 0,
                  50 * kKiB, 1, [&] { end = f.sim.now(); });
    f.sim.run();
    EXPECT_EQ(f.cache->stats().readFullHits, 1ULL);
    EXPECT_LT(ticksToSeconds(end - start), 0.001);
    EXPECT_EQ(f.disk.stats().totalBytes(storage::IoKind::Read), 0ULL);
}

TEST(PageCache, DeterministicAcrossRuns)
{
    auto run = [] {
        Fixture f;
        for (int i = 0; i < 8; ++i) {
            f.cache->write(Role::Local, storage::IoOp::ShuffleWrite, 1,
                           static_cast<Bytes>(i) * 40 * kKiB, 40 * kKiB,
                           1, [] {});
            f.cache->read(Role::Hdfs, storage::IoOp::HdfsRead, 2,
                          static_cast<Bytes>(i) * 100 * kKiB,
                          100 * kKiB, 1, [] {});
        }
        const Tick end = f.sim.run();
        return std::make_tuple(end, f.cache->stats().flushedBytes,
                               f.cache->stats().throttledWrites,
                               f.cache->stats().evictedBytes);
    };
    EXPECT_EQ(run(), run());
}

TEST(PageCache, ResetDropsContentsAndStats)
{
    Fixture f;
    f.cache->read(Role::Hdfs, storage::IoOp::HdfsRead, 1, 0, 100 * kKiB,
                  1, [] {});
    f.sim.run();
    f.cache->reset();
    EXPECT_EQ(f.cache->cachedBytes(), 0ULL);
    EXPECT_EQ(f.cache->stats().reads, 0ULL);
    // The re-read is cold again: drop_caches semantics.
    f.cache->read(Role::Hdfs, storage::IoOp::HdfsRead, 1, 0, 100 * kKiB,
                  1, [] {});
    f.sim.run();
    EXPECT_EQ(f.cache->stats().readFullHits, 0ULL);
}

/** NodeConfig wired for the cache with the fixture's device params. */
cluster::NodeConfig
cachedNodeConfig()
{
    cluster::NodeConfig config;
    config.hdfsDisk = simpleParams();
    config.localDisk = simpleParams();
    config.pageCache.enabled = true;
    config.pageCache.capacity = 1000 * kKiB;
    config.pageCache.memoryBandwidth = 1000.0 * 1000.0 * kKiB;
    config.pageCache.readAhead = 0;
    config.pageCache.flushChunk = 100 * kKiB;
    return config;
}

TEST(NodeCache, AutoCapacityIsRamMinusExecutorHeap)
{
    sim::Simulator sim;
    cluster::NodeConfig config = cachedNodeConfig();
    config.pageCache.capacity = 0; // auto
    cluster::Node node(sim, config, 0);
    ASSERT_NE(node.pageCache(), nullptr);
    EXPECT_EQ(node.pageCache()->capacity(),
              config.ram - config.executorMemory);
}

TEST(NodeCache, AnonymousStreamBypassesTheCache)
{
    sim::Simulator sim;
    cluster::Node node(sim, cachedNodeConfig(), 0);
    node.readThrough(Role::Hdfs, storage::IoOp::HdfsRead,
                     kAnonymousStream, 0, 100 * kKiB, 1, [] {});
    sim.run();
    EXPECT_EQ(node.pageCache()->stats().reads, 0ULL);
    EXPECT_EQ(node.hdfsDisk().stats().totalBytes(storage::IoKind::Read),
              100 * kKiB);
}

TEST(NodeCache, PassThroughMatchesDirectDeviceTiming)
{
    // With the cache disabled, readThrough with any stream identity
    // must cost exactly what the direct device call costs.
    sim::Simulator sim_node;
    cluster::NodeConfig config;
    config.hdfsDisk = simpleParams();
    config.localDisk = simpleParams();
    cluster::Node node(sim_node, config, 0);
    EXPECT_EQ(node.pageCache(), nullptr);
    node.readThrough(Role::Local, storage::IoOp::PersistRead, 7, 0,
                     10 * kKiB, 5, [] {});
    const Tick via_node = sim_node.run();

    sim::Simulator sim_direct;
    storage::DiskDevice disk(sim_direct, simpleParams(), "d");
    disk.submitBatch(storage::IoOp::PersistRead, 10 * kKiB, 5, [] {});
    const Tick direct = sim_direct.run();

    EXPECT_EQ(via_node, direct);
}

TEST(NodeCache, ResetRestartsRoundRobinAndCache)
{
    sim::Simulator sim;
    cluster::NodeConfig config = cachedNodeConfig();
    config.hdfsDiskCount = 2;
    config.localDiskCount = 3;
    cluster::Node node(sim, config, 0);

    EXPECT_EQ(&node.pickHdfsDisk(), &node.hdfsDisk(0));
    EXPECT_EQ(&node.pickLocalDisk(), &node.localDisk(0));
    EXPECT_EQ(&node.pickLocalDisk(), &node.localDisk(1));
    node.readThrough(Role::Hdfs, storage::IoOp::HdfsRead, 1, 0,
                     100 * kKiB, 1, [] {});
    sim.run();

    node.reset();
    // Pickers start over from device 0 and the cache is cold again.
    EXPECT_EQ(&node.pickHdfsDisk(), &node.hdfsDisk(0));
    EXPECT_EQ(&node.pickLocalDisk(), &node.localDisk(0));
    EXPECT_EQ(node.pageCache()->cachedBytes(), 0ULL);
    EXPECT_EQ(node.pageCache()->stats().reads, 0ULL);
}

TEST(ClusterCache, TotalsSumOverNodes)
{
    sim::Simulator sim;
    cluster::ClusterConfig config;
    config.numSlaves = 2;
    config.node = cachedNodeConfig();
    cluster::Cluster cluster(sim, config);
    EXPECT_TRUE(cluster.pageCacheEnabled());
    cluster.node(0).readThrough(Role::Hdfs, storage::IoOp::HdfsRead, 1,
                                0, 100 * kKiB, 1, [] {});
    cluster.node(1).readThrough(Role::Hdfs, storage::IoOp::HdfsRead, 1,
                                0, 100 * kKiB, 1, [] {});
    sim.run();
    EXPECT_EQ(cluster.pageCacheTotals().reads, 2ULL);
    cluster.reset();
    EXPECT_EQ(cluster.pageCacheTotals().reads, 0ULL);
}

/** A deliberately small Terasort for end-to-end runs. */
workloads::Terasort
tinyTerasort()
{
    workloads::Terasort::Options options;
    options.dataBytes = gib(8);
    options.reducers = 8;
    return workloads::Terasort(options);
}

TEST(WorkloadCache, MetricsJsonOmitsPageCacheWhenDisabled)
{
    const cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    const spark::AppMetrics metrics =
        tinyTerasort().run(config, spark::SparkConf{});
    EXPECT_FALSE(metrics.pageCachePresent);
    EXPECT_EQ(spark::metricsJson(metrics).find("page_cache"),
              std::string::npos);
}

TEST(WorkloadCache, MetricsJsonReportsPageCacheWhenEnabled)
{
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    config.node.pageCache.enabled = true;
    const spark::AppMetrics metrics =
        tinyTerasort().run(config, spark::SparkConf{});
    EXPECT_TRUE(metrics.pageCachePresent);
    EXPECT_GT(metrics.pageCache.reads, 0ULL);
    const std::string json = spark::metricsJson(metrics);
    EXPECT_NE(json.find("\"page_cache\":{"), std::string::npos);
    EXPECT_NE(json.find("\"hit_ratio\":"), std::string::npos);
}

TEST(WorkloadCache, DisabledConfigMatchesDefaultBitForBit)
{
    // pageCache.enabled = false must be indistinguishable from a
    // config that never heard of the page cache.
    const cluster::ClusterConfig default_config =
        cluster::ClusterConfig::motivationCluster();
    cluster::ClusterConfig off_config = default_config;
    off_config.node.pageCache.enabled = false;
    const std::string a = spark::metricsJson(
        tinyTerasort().run(default_config, spark::SparkConf{}));
    const std::string b = spark::metricsJson(
        tinyTerasort().run(off_config, spark::SparkConf{}));
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace doppio::oscache
