/**
 * @file
 * Unit tests for streaming summary statistics.
 */

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"

namespace doppio {
namespace {

TEST(SummaryStats, EmptyState)
{
    SummaryStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.plusError(), 0.0);
    EXPECT_DOUBLE_EQ(s.minusError(), 0.0);
}

TEST(SummaryStats, BasicMoments)
{
    SummaryStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStats, ErrorBars)
{
    // The paper reports mean with +max/-min error bars over five runs.
    SummaryStats s;
    for (double x : {10.0, 11.0, 12.0, 13.0, 14.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.plusError(), 2.0);
    EXPECT_DOUBLE_EQ(s.minusError(), 2.0);
}

TEST(SummaryStats, MergeMatchesSequential)
{
    SummaryStats all, a, b;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10.0;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStats, MergeWithEmpty)
{
    SummaryStats a, b;
    a.add(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(SummaryStats, AddManyMatchesLoop)
{
    SummaryStats loop, bulk;
    for (int i = 0; i < 1000; ++i)
        loop.add(3.5);
    bulk.addMany(3.5, 1000);
    EXPECT_EQ(bulk.count(), loop.count());
    EXPECT_NEAR(bulk.mean(), loop.mean(), 1e-12);
    EXPECT_NEAR(bulk.variance(), loop.variance(), 1e-9);
}

TEST(SummaryStats, AddManyMixed)
{
    SummaryStats s;
    s.addMany(10.0, 3);
    s.add(20.0);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 12.5);
    EXPECT_DOUBLE_EQ(s.max(), 20.0);
}

TEST(SummaryStats, AddManyZeroIsNoop)
{
    SummaryStats s;
    s.addMany(5.0, 0);
    EXPECT_EQ(s.count(), 0u);
}

TEST(SummaryStats, Reset)
{
    SummaryStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(RelativeError, Basics)
{
    EXPECT_DOUBLE_EQ(relativeError(110.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(90.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(0.0, 0.0), 0.0);
    EXPECT_TRUE(std::isinf(relativeError(1.0, 0.0)));
}

TEST(Quantile, EmptyReturnsZero)
{
    EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(quantile({}, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantile({}, 1.0), 0.0);
}

TEST(Quantile, SingleSampleAnyQ)
{
    const std::vector<double> one = {7.0};
    EXPECT_DOUBLE_EQ(quantile(one, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(quantile(one, 0.5), 7.0);
    EXPECT_DOUBLE_EQ(quantile(one, 0.99), 7.0);
    EXPECT_DOUBLE_EQ(quantile(one, 1.0), 7.0);
}

TEST(Quantile, NearestRank)
{
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    // rank = ceil(q * 4): 0.5 -> 2nd, 0.51 -> 3rd, 0.75 -> 3rd.
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.51), 3.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.75), 3.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.76), 4.0);
}

TEST(Quantile, OutOfRangeQClamps)
{
    const std::vector<double> v = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(quantile(v, -0.5), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 3.0);
    EXPECT_DOUBLE_EQ(quantile(v, 2.0), 3.0);
    EXPECT_DOUBLE_EQ(
        quantile(v, std::numeric_limits<double>::quiet_NaN()), 1.0);
}

} // namespace
} // namespace doppio
