/**
 * @file
 * Unit tests for RDD storage placement (paper §III-B2 mechanism).
 */

#include <gtest/gtest.h>

#include "spark/block_manager.h"

namespace doppio::spark {
namespace {

RddRef
makeRdd(const std::string &name, Bytes bytes, StorageLevel level,
        Bytes memoryBytes = 0)
{
    auto rdd = std::make_shared<Rdd>();
    rdd->name = name;
    rdd->numPartitions = 10;
    rdd->bytes = bytes;
    rdd->memoryBytes = memoryBytes;
    rdd->storageLevel = level;
    return rdd;
}

TEST(BlockManager, FitsInMemory)
{
    BlockManager bm(gib(100), 1.0);
    RddRef rdd = makeRdd("a", gib(50), StorageLevel::MemoryAndDisk);
    EXPECT_EQ(bm.materialize(*rdd), BlockManager::Placement::Memory);
    EXPECT_EQ(bm.placementOf(rdd.get()),
              BlockManager::Placement::Memory);
    EXPECT_EQ(bm.memoryUsed(), gib(50));
}

TEST(BlockManager, OverflowFallsToDisk)
{
    // The paper's LR-large case: 990 GB > 360 GB of storage memory.
    BlockManager bm(gib(360), 1.0);
    RddRef rdd = makeRdd("parsedData", gib(990),
                         StorageLevel::MemoryAndDisk, gib(990));
    EXPECT_EQ(bm.materialize(*rdd), BlockManager::Placement::Disk);
    EXPECT_EQ(bm.memoryUsed(), 0ULL);
}

TEST(BlockManager, ExpansionFactorAppliesWhenUnset)
{
    // 50 GB serialized x 3.0 expansion = 150 GB > 100 GB capacity.
    BlockManager bm(gib(100), 3.0);
    RddRef rdd = makeRdd("a", gib(50), StorageLevel::MemoryAndDisk);
    EXPECT_EQ(bm.materialize(*rdd), BlockManager::Placement::Disk);
}

TEST(BlockManager, MemoryOnlyOverflowStaysUnmaterialized)
{
    BlockManager bm(gib(10), 1.0);
    RddRef rdd = makeRdd("a", gib(50), StorageLevel::MemoryOnly);
    EXPECT_EQ(bm.materialize(*rdd),
              BlockManager::Placement::Unmaterialized);
    EXPECT_EQ(bm.placementOf(rdd.get()),
              BlockManager::Placement::Unmaterialized);
}

TEST(BlockManager, DiskOnlyNeverUsesMemory)
{
    BlockManager bm(gib(100), 1.0);
    RddRef rdd = makeRdd("a", gib(1), StorageLevel::DiskOnly);
    EXPECT_EQ(bm.materialize(*rdd), BlockManager::Placement::Disk);
    EXPECT_EQ(bm.memoryUsed(), 0ULL);
}

TEST(BlockManager, NoneLevelUnmaterialized)
{
    BlockManager bm(gib(100), 1.0);
    RddRef rdd = makeRdd("a", gib(1), StorageLevel::None);
    EXPECT_EQ(bm.materialize(*rdd),
              BlockManager::Placement::Unmaterialized);
}

TEST(BlockManager, MaterializeIsIdempotent)
{
    BlockManager bm(gib(100), 1.0);
    RddRef rdd = makeRdd("a", gib(40), StorageLevel::MemoryAndDisk);
    bm.materialize(*rdd);
    bm.materialize(*rdd);
    EXPECT_EQ(bm.memoryUsed(), gib(40));
}

TEST(BlockManager, CapacitySharedAcrossRdds)
{
    BlockManager bm(gib(100), 1.0);
    RddRef a = makeRdd("a", gib(60), StorageLevel::MemoryAndDisk);
    RddRef b = makeRdd("b", gib(60), StorageLevel::MemoryAndDisk);
    EXPECT_EQ(bm.materialize(*a), BlockManager::Placement::Memory);
    EXPECT_EQ(bm.materialize(*b), BlockManager::Placement::Disk);
}

TEST(BlockManager, UnpersistFreesMemory)
{
    BlockManager bm(gib(100), 1.0);
    RddRef a = makeRdd("a", gib(60), StorageLevel::MemoryAndDisk);
    bm.materialize(*a);
    bm.unpersist(a.get());
    EXPECT_EQ(bm.memoryUsed(), 0ULL);
    EXPECT_EQ(bm.placementOf(a.get()),
              BlockManager::Placement::Unmaterialized);
    // Now a second RDD fits again.
    RddRef b = makeRdd("b", gib(60), StorageLevel::MemoryAndDisk);
    EXPECT_EQ(bm.materialize(*b), BlockManager::Placement::Memory);
}

TEST(BlockManager, UnpersistDiskPlacementNoMemoryChange)
{
    BlockManager bm(gib(10), 1.0);
    RddRef a = makeRdd("a", gib(60), StorageLevel::MemoryAndDisk);
    bm.materialize(*a);
    bm.unpersist(a.get());
    EXPECT_EQ(bm.memoryUsed(), 0ULL);
}

TEST(BlockManager, UnpersistUnknownIsNoop)
{
    BlockManager bm(gib(10), 1.0);
    RddRef a = makeRdd("a", gib(1), StorageLevel::None);
    bm.unpersist(a.get());
    EXPECT_EQ(bm.memoryUsed(), 0ULL);
}

TEST(BlockManager, ShuffleRegistry)
{
    BlockManager bm(gib(10), 1.0);
    RddRef a = makeRdd("a", gib(1), StorageLevel::None);
    EXPECT_FALSE(bm.shuffleAvailable(a.get()));
    bm.markShuffleAvailable(a.get());
    EXPECT_TRUE(bm.shuffleAvailable(a.get()));
}

TEST(BlockManager, Gatk4UnionRddNeverFits)
{
    // 870 GB deserialized vs 3 x 36 GB storage memory (§III-B2).
    BlockManager bm(3 * static_cast<Bytes>(0.4 * 90) * kGiB, 3.0);
    RddRef marked = makeRdd("markedReads", gib(336),
                            StorageLevel::MemoryOnly, gib(870));
    EXPECT_EQ(bm.materialize(*marked),
              BlockManager::Placement::Unmaterialized);
}

} // namespace
} // namespace doppio::spark
