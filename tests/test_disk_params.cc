/**
 * @file
 * Unit tests for disk parameter presets against the paper's anchors.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/units.h"
#include "storage/disk_params.h"

namespace doppio::storage {
namespace {

TEST(DiskParams, TypeNames)
{
    EXPECT_STREQ(diskTypeName(DiskType::Hdd), "HDD");
    EXPECT_STREQ(diskTypeName(DiskType::Ssd), "SSD");
}

TEST(DiskParams, HddAnchor30K)
{
    // Paper Fig. 5a: ~15 MB/s at 30 KB.
    const DiskParams hdd = makeHddParams();
    const double bw = hdd.effectiveBandwidth(IoKind::Read, kib(30));
    EXPECT_NEAR(toMiBps(bw), 15.0, 1.0);
}

TEST(DiskParams, SsdAnchor30K)
{
    // Paper Fig. 5b: ~480 MB/s at 30 KB (bandwidth-capped).
    const DiskParams ssd = makeSsdParams();
    const double bw = ssd.effectiveBandwidth(IoKind::Read, kib(30));
    EXPECT_NEAR(toMiBps(bw), 480.0, 10.0);
}

TEST(DiskParams, Gap32xAt30K)
{
    const DiskParams hdd = makeHddParams();
    const DiskParams ssd = makeSsdParams();
    const double gap =
        ssd.effectiveBandwidth(IoKind::Read, kib(30)) /
        hdd.effectiveBandwidth(IoKind::Read, kib(30));
    EXPECT_NEAR(gap, 32.0, 4.0);
}

TEST(DiskParams, GapAt4KAround181x)
{
    const DiskParams hdd = makeHddParams();
    const DiskParams ssd = makeSsdParams();
    const double gap = ssd.effectiveBandwidth(IoKind::Read, kib(4)) /
                       hdd.effectiveBandwidth(IoKind::Read, kib(4));
    EXPECT_GT(gap, 150.0);
    EXPECT_LT(gap, 230.0);
}

TEST(DiskParams, GapAt128MAround3p7x)
{
    const DiskParams hdd = makeHddParams();
    const DiskParams ssd = makeSsdParams();
    const double gap = ssd.effectiveBandwidth(IoKind::Read, mib(128)) /
                       hdd.effectiveBandwidth(IoKind::Read, mib(128));
    EXPECT_NEAR(gap, 3.7, 0.4);
}

TEST(DiskParams, HddLargeChunkWriteNear100MBps)
{
    // Paper §V-A1: shuffle write of ~365 MB chunks sustains ~100 MB/s.
    const DiskParams hdd = makeHddParams();
    const double bw = hdd.effectiveBandwidth(IoKind::Write, mib(365));
    EXPECT_NEAR(toMiBps(bw), 100.0, 5.0);
}

TEST(DiskParams, EffectiveBandwidthMonotoneInRequestSize)
{
    const DiskParams hdd = makeHddParams();
    double prev = 0.0;
    for (Bytes rs = kib(4); rs <= mib(512); rs *= 2) {
        const double bw = hdd.effectiveBandwidth(IoKind::Read, rs);
        EXPECT_GE(bw, prev);
        prev = bw;
    }
}

TEST(DiskParams, ZeroRequestSizeReturnsPeak)
{
    const DiskParams ssd = makeSsdParams();
    EXPECT_DOUBLE_EQ(ssd.effectiveBandwidth(IoKind::Read, 0),
                     ssd.readBandwidth);
}

TEST(DiskParams, ValidateRejectsNonPositive)
{
    DiskParams p = makeHddParams();
    p.readIops = 0.0;
    EXPECT_THROW(p.validate(), FatalError);
    p = makeHddParams();
    p.writeBandwidth = -1.0;
    EXPECT_THROW(p.validate(), FatalError);
    EXPECT_NO_THROW(makeSsdParams().validate());
}

TEST(DiskParams, PresetsCarryCapacity)
{
    EXPECT_EQ(makeHddParams().capacity, 4 * kTiB);
    EXPECT_EQ(makeSsdParams().capacity, 240 * kGiB);
    EXPECT_EQ(makeHddParams(kTiB).capacity, kTiB);
}

} // namespace
} // namespace doppio::storage
