/**
 * @file
 * Unit tests for console table rendering.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/table_printer.h"

namespace doppio {
namespace {

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t;
    t.setHeader({"stage", "time"});
    t.addRow({"MD", "15.0"});
    t.addRow({"BR", "139.99"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("stage"), std::string::npos);
    EXPECT_NE(out.find("BR"), std::string::npos);
    // Header rule present.
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinter, TitlePrinted)
{
    TablePrinter t("Fig 2");
    t.setHeader({"a"});
    std::ostringstream os;
    t.print(os);
    EXPECT_EQ(os.str().rfind("== Fig 2 ==", 0), 0u);
}

TEST(TablePrinter, NumFormatsPrecision)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(3.14159, 0), "3");
    EXPECT_EQ(TablePrinter::num(10.0, 1), "10.0");
}

TEST(TablePrinter, PercentFormats)
{
    EXPECT_EQ(TablePrinter::percent(0.057), "5.7%");
    EXPECT_EQ(TablePrinter::percent(0.5, 0), "50%");
}

TEST(TablePrinter, RaggedRowsTolerated)
{
    TablePrinter t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"1"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("1"), std::string::npos);
}

TEST(TablePrinter, EmptyTableJustHeader)
{
    TablePrinter t;
    t.setHeader({"only"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("only"), std::string::npos);
}

} // namespace
} // namespace doppio
