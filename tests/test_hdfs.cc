/**
 * @file
 * Unit tests for the HDFS model.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "dfs/hdfs.h"
#include "sim/simulator.h"

namespace doppio::dfs {
namespace {

class HdfsTest : public ::testing::Test
{
  protected:
    HdfsTest()
        : cluster_(sim_, cluster::ClusterConfig::motivationCluster()),
          hdfs_(cluster_)
    {}

    sim::Simulator sim_;
    cluster::Cluster cluster_;
    Hdfs hdfs_;
};

TEST_F(HdfsTest, RegisterAndLookup)
{
    const FileId id = hdfs_.addFile("genome.bam", gib(122));
    EXPECT_EQ(hdfs_.file(id).name, "genome.bam");
    EXPECT_EQ(hdfs_.fileByName("genome.bam").size, gib(122));
    EXPECT_EQ(hdfs_.fileIdByName("genome.bam"), id);
}

TEST_F(HdfsTest, NumBlocksCeils)
{
    const FileId id = hdfs_.addFile("f", 128 * kMiB * 3 + 1);
    EXPECT_EQ(hdfs_.file(id).numBlocks(), 4);
}

TEST_F(HdfsTest, PaperPartitionCount)
{
    // 122 GB / 128 MB -> 976 blocks (the paper quotes 973 using
    // decimal GB; the block-count mechanism is identical).
    const FileId id = hdfs_.addFile("genome.bam", gib(122));
    EXPECT_EQ(hdfs_.file(id).numBlocks(), 976);
}

TEST_F(HdfsTest, DuplicateNameFatal)
{
    hdfs_.addFile("f", kMiB);
    EXPECT_THROW(hdfs_.addFile("f", kMiB), FatalError);
}

TEST_F(HdfsTest, MissingNameFatal)
{
    EXPECT_THROW(hdfs_.fileByName("nope"), FatalError);
    EXPECT_THROW(hdfs_.file(99), FatalError);
}

TEST_F(HdfsTest, ReadChunkHitsLocalDisk)
{
    hdfs_.readChunk(1, mib(128), [] {});
    sim_.run();
    EXPECT_EQ(cluster_.node(1)
                  .hdfsDisk()
                  .stats()
                  .forOp(storage::IoOp::HdfsRead)
                  .bytes,
              mib(128));
    EXPECT_EQ(cluster_.node(0)
                  .hdfsDisk()
                  .stats()
                  .forOp(storage::IoOp::HdfsRead)
                  .bytes,
              0ULL);
}

TEST_F(HdfsTest, WriteReplicatesToRemoteNode)
{
    bool done = false;
    hdfs_.writeChunk(0, mib(128), [&] { done = true; });
    sim_.run();
    EXPECT_TRUE(done);
    // dfs.replication = 2: one local copy + one remote copy.
    EXPECT_EQ(hdfs_.physicalBytesWritten(), 2 * mib(128));
    Bytes total = 0;
    int nodes_written = 0;
    for (int n = 0; n < cluster_.numSlaves(); ++n) {
        const Bytes b = cluster_.node(n)
                            .hdfsDisk()
                            .stats()
                            .forOp(storage::IoOp::HdfsWrite)
                            .bytes;
        total += b;
        if (b > 0)
            ++nodes_written;
    }
    EXPECT_EQ(total, 2 * mib(128));
    EXPECT_EQ(nodes_written, 2);
    // The local node always holds one replica.
    EXPECT_EQ(cluster_.node(0)
                  .hdfsDisk()
                  .stats()
                  .forOp(storage::IoOp::HdfsWrite)
                  .bytes,
              mib(128));
}

TEST_F(HdfsTest, ReplicationUsesNetwork)
{
    hdfs_.writeChunk(0, mib(64), [] {});
    sim_.run();
    EXPECT_EQ(cluster_.network().remoteBytes(), mib(64));
}

TEST_F(HdfsTest, BatchMatchesChunkAccounting)
{
    hdfs_.readBatch(0, mib(1), 100, [] {});
    sim_.run();
    EXPECT_EQ(cluster_.node(0)
                  .hdfsDisk()
                  .stats()
                  .forOp(storage::IoOp::HdfsRead)
                  .requests,
              100ULL);
}

TEST_F(HdfsTest, WriteBatchReplicates)
{
    hdfs_.writeBatch(2, mib(1), 10, [] {});
    sim_.run();
    EXPECT_EQ(hdfs_.physicalBytesWritten(), 20 * mib(1));
}

TEST(HdfsConfigTest, InvalidConfigFatal)
{
    sim::Simulator sim;
    cluster::Cluster cluster(sim,
                             cluster::ClusterConfig::motivationCluster());
    EXPECT_THROW(Hdfs(cluster, HdfsConfig{0, 2}), FatalError);
    EXPECT_THROW(Hdfs(cluster, HdfsConfig{128 * kMiB, 0}), FatalError);
}

TEST(HdfsConfigTest, SingleNodeClusterWritesOneReplica)
{
    sim::Simulator sim;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    config.numSlaves = 1;
    cluster::Cluster cluster(sim, config);
    Hdfs hdfs(cluster);
    hdfs.writeChunk(0, mib(1), [] {});
    sim.run();
    EXPECT_EQ(hdfs.physicalBytesWritten(), mib(1));
}

} // namespace
} // namespace doppio::dfs
