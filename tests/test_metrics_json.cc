/**
 * @file
 * Tests for JSON metrics export.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "dfs/hdfs.h"
#include "sim/simulator.h"
#include "spark/metrics_json.h"
#include "spark/spark_context.h"

namespace doppio::spark {
namespace {

AppMetrics
sampleRun()
{
    sim::Simulator sim;
    cluster::Cluster cluster(
        sim, cluster::ClusterConfig::motivationCluster());
    dfs::Hdfs hdfs(cluster);
    hdfs.addFile("input", gib(1));
    SparkContext context(cluster, hdfs, SparkConf{});
    RddRef input = context.hadoopFile("input");
    context.runJob("count", input, ActionSpec::count());
    AppMetrics metrics = context.metrics();
    metrics.name = "sample";
    return metrics;
}

TEST(MetricsJson, ContainsStructure)
{
    const std::string json = metricsJson(sampleRun());
    EXPECT_NE(json.find("\"app\":\"sample\""), std::string::npos);
    EXPECT_NE(json.find("\"jobs\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"count\""), std::string::npos);
    EXPECT_NE(json.find("\"tasks\":8"), std::string::npos);
    EXPECT_NE(json.find("\"hdfs_read\""), std::string::npos);
}

TEST(MetricsJson, OmitsIdleOps)
{
    const std::string json = metricsJson(sampleRun());
    EXPECT_EQ(json.find("shuffle_write"), std::string::npos);
    EXPECT_EQ(json.find("persist_read"), std::string::npos);
}

TEST(MetricsJson, BalancedBracesAndQuotes)
{
    const std::string json = metricsJson(sampleRun());
    int braces = 0, brackets = 0, quotes = 0;
    for (char c : json) {
        if (c == '{')
            ++braces;
        if (c == '}')
            --braces;
        if (c == '[')
            ++brackets;
        if (c == ']')
            --brackets;
        if (c == '"')
            ++quotes;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_EQ(quotes % 2, 0);
}

TEST(MetricsJson, EscapesSpecialCharacters)
{
    AppMetrics metrics;
    metrics.name = "app\"with\\quotes";
    const std::string json = metricsJson(metrics);
    EXPECT_NE(json.find("app\\\"with\\\\quotes"), std::string::npos);
}

TEST(MetricsJson, EmptyApp)
{
    AppMetrics metrics;
    metrics.name = "empty";
    const std::string json = metricsJson(metrics);
    EXPECT_EQ(json, "{\"app\":\"empty\",\"seconds\":0,\"jobs\":[]}");
}

} // namespace
} // namespace doppio::spark
