/**
 * @file
 * Workload tests: GATK4 against the paper's §III observations.
 *
 * These run the full pipeline on the motivation cluster, so they are
 * integration tests; a reduced input scale keeps them fast where the
 * check does not depend on absolute sizes.
 */

#include <gtest/gtest.h>

#include "cluster/cluster_config.h"
#include "workloads/gatk4.h"

namespace doppio::workloads {
namespace {

spark::AppMetrics
runGatk4(const cluster::HybridConfig &hybrid, int cores,
         double read_pairs = 500.0)
{
    // Scale-faithful options keep M, R and the request-size signature
    // at their full-scale values (see Gatk4::Options::scaled).
    const Gatk4 gatk4(Gatk4::Options::scaled(read_pairs));
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    config.applyHybrid(hybrid);
    spark::SparkConf conf;
    conf.executorCores = cores;
    return gatk4.run(config, conf);
}

TEST(Gatk4, OptionsMatchPaperSizes)
{
    const Gatk4::Options options;
    EXPECT_EQ(options.inputBytes(), gib(122));
    EXPECT_EQ(options.shuffleBytes(), gib(334));
    EXPECT_EQ(options.outputBytes(), gib(166));
    // R = 334 GiB / 27 MiB ~ 12667 reducers.
    EXPECT_NEAR(options.numReducers(), 12667, 2);
}

TEST(Gatk4, OptionsScaleLinearly)
{
    Gatk4::Options half;
    half.readPairsMillions = 250.0;
    EXPECT_EQ(half.inputBytes(), gib(61));
    EXPECT_EQ(half.shuffleBytes(), gib(167));
}

TEST(Gatk4, TableIvIoBytes)
{
    // Table IV, exactly: MD reads 122/writes 334; BR reads 122+334;
    // SF reads 122+334, writes 166.
    const spark::AppMetrics m =
        runGatk4(cluster::HybridConfig::config1(), 36, 100.0);
    const double scale = 100.0 / 500.0;
    using storage::IoOp;
    EXPECT_NEAR(toGiB(m.bytesForPrefix("MD", IoOp::HdfsRead)),
                122 * scale, 1.0);
    EXPECT_NEAR(toGiB(m.bytesForPrefix("MD", IoOp::ShuffleWrite)),
                334 * scale, 1.0);
    EXPECT_EQ(m.bytesForPrefix("MD", IoOp::ShuffleRead), 0ULL);
    EXPECT_NEAR(toGiB(m.bytesForPrefix("BR", IoOp::ShuffleRead)),
                334 * scale, 1.0);
    EXPECT_NEAR(toGiB(m.bytesForPrefix("BR", IoOp::HdfsRead)),
                122 * scale, 1.0);
    EXPECT_EQ(m.bytesForPrefix("BR", IoOp::HdfsWrite), 0ULL);
    EXPECT_NEAR(toGiB(m.bytesForPrefix("SF", IoOp::ShuffleRead)),
                334 * scale, 1.0);
    EXPECT_NEAR(toGiB(m.bytesForPrefix("SF", IoOp::HdfsWrite)),
                166 * scale, 1.0);
    EXPECT_EQ(m.bytesForPrefix("SF", IoOp::ShuffleWrite), 0ULL);
}

TEST(Gatk4, StagesAppearOnce)
{
    const spark::AppMetrics m =
        runGatk4(cluster::HybridConfig::config1(), 36, 50.0);
    ASSERT_EQ(m.jobs.size(), 2u);
    ASSERT_EQ(m.jobs[0].stages.size(), 2u); // MD + BR
    ASSERT_EQ(m.jobs[1].stages.size(), 1u); // SF (shuffle reused)
    EXPECT_EQ(m.jobs[0].stages[0].name, "MD");
    EXPECT_EQ(m.jobs[0].stages[1].name, "BR");
    EXPECT_EQ(m.jobs[1].stages[0].name, "SF");
}

TEST(Gatk4, ShuffleReadRequestSizeNear30K)
{
    // §III-C2: 27 MB per reducer over ~976 mappers -> ~29 KB requests.
    const spark::AppMetrics m =
        runGatk4(cluster::HybridConfig::config1(), 36);
    const spark::StageMetrics *br = m.allStages()[1];
    const double rs =
        br->forOp(storage::IoOp::ShuffleRead).avgRequestSize();
    EXPECT_NEAR(rs, 29000.0, 3000.0);
}

TEST(Gatk4, HddShuffleReadMatchesPaperArithmetic)
{
    // §III-C3: 334 GB / 3 nodes / 15 MB/s = ~126 min for BR under
    // 2HDD. Allow 15% for jitter, network and task ramp.
    const spark::AppMetrics m =
        runGatk4(cluster::HybridConfig::config4(), 36);
    const double br_min = m.secondsForPrefix("BR") / 60.0;
    const double expected =
        334.0 * 1024.0 / 3.0 / 15.0 / 60.0; // in minutes
    EXPECT_NEAR(br_min, expected, expected * 0.15);
}

TEST(Gatk4, SsdLocalMassivelyFasterForBrSf)
{
    const spark::AppMetrics ssd =
        runGatk4(cluster::HybridConfig::config1(), 36, 100.0);
    const spark::AppMetrics hdd =
        runGatk4(cluster::HybridConfig::config3(), 36, 100.0);
    EXPECT_GT(hdd.secondsForPrefix("BR") / ssd.secondsForPrefix("BR"),
              3.0);
    EXPECT_GT(hdd.secondsForPrefix("SF") / ssd.secondsForPrefix("SF"),
              5.0);
}

TEST(Gatk4, MdInsensitiveToHdfsDisk)
{
    // §III-A observation 1.
    const spark::AppMetrics ssd =
        runGatk4(cluster::HybridConfig::config1(), 36, 100.0);
    const spark::AppMetrics hdd_hdfs =
        runGatk4(cluster::HybridConfig::config2(), 36, 100.0);
    const double ratio = hdd_hdfs.secondsForPrefix("MD") /
                         ssd.secondsForPrefix("MD");
    // "No performance gain" in the paper; at reduced scale the HDFS
    // read bursts are a slightly larger share of the shorter stage.
    EXPECT_NEAR(ratio, 1.0, 0.30);
}

TEST(Gatk4, SfMoreHdfsSensitiveThanBr)
{
    // §III-A: HDFS HDD->SSD gains up to 30% (BR) and 90% (SF).
    const spark::AppMetrics ssd =
        runGatk4(cluster::HybridConfig::config1(), 36, 100.0);
    const spark::AppMetrics hdd_hdfs =
        runGatk4(cluster::HybridConfig::config2(), 36, 100.0);
    const double br_gain = hdd_hdfs.secondsForPrefix("BR") /
                           ssd.secondsForPrefix("BR");
    const double sf_gain = hdd_hdfs.secondsForPrefix("SF") /
                           ssd.secondsForPrefix("SF");
    EXPECT_GT(sf_gain, br_gain);
    EXPECT_GT(sf_gain, 1.5);
}

TEST(Gatk4, HddStagesFlatInCores)
{
    // Fig. 3: under 2HDD, BR/SF runtimes do not improve with P.
    const spark::AppMetrics p12 =
        runGatk4(cluster::HybridConfig::config4(), 12, 100.0);
    const spark::AppMetrics p36 =
        runGatk4(cluster::HybridConfig::config4(), 36, 100.0);
    EXPECT_NEAR(p36.secondsForPrefix("BR"),
                p12.secondsForPrefix("BR"),
                p12.secondsForPrefix("BR") * 0.1);
}

TEST(Gatk4, SsdStagesScaleWithCores)
{
    // Fig. 3: under 2SSD, BR improves as P rises 12 -> 36.
    const spark::AppMetrics p12 =
        runGatk4(cluster::HybridConfig::config1(), 12, 100.0);
    const spark::AppMetrics p36 =
        runGatk4(cluster::HybridConfig::config1(), 36, 100.0);
    EXPECT_LT(p36.secondsForPrefix("BR"),
              p12.secondsForPrefix("BR") * 0.5);
}

TEST(Gatk4, MdNearlyFlatOnSsdDueToGc)
{
    // Fig. 3 + §V-A1: MD's GC grows with P, cancelling the speedup.
    const spark::AppMetrics p12 =
        runGatk4(cluster::HybridConfig::config1(), 12, 100.0);
    const spark::AppMetrics p36 =
        runGatk4(cluster::HybridConfig::config1(), 36, 100.0);
    const double ratio = p36.secondsForPrefix("MD") /
                         p12.secondsForPrefix("MD");
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.25);
}

} // namespace
} // namespace doppio::workloads
