/**
 * @file
 * Tests for the micro-batch streaming tenant (sched::StreamingDriver
 * and the streaming workload templates): arrival determinism,
 * backpressure under overload, SLO accounting, Poisson arrivals, the
 * monotone stability boundary, and distinct page-cache streams for
 * distinct batch files.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster_config.h"
#include "common/logging.h"
#include "sched/jobs_spec.h"
#include "sched/streaming.h"
#include "workloads/multi_tenant.h"
#include "workloads/registry.h"
#include "workloads/streaming.h"

namespace doppio {
namespace {

cluster::ClusterConfig
benchCluster()
{
    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    config.numSlaves = 2;
    return config;
}

/** One stream tenant on a small cluster; returns its metrics. */
spark::StreamingMetrics
runStream(const sched::StreamingOptions &options,
          const cluster::ClusterConfig &config = benchCluster())
{
    sched::MultiJobSpec spec;
    sched::TenantSpec tenant;
    tenant.kind = sched::TenantSpec::Kind::Stream;
    tenant.workload = "lr";
    tenant.stream = options;
    spec.tenants.push_back(tenant);
    spark::SparkConf conf;
    conf.executorCores = 8;
    const workloads::MultiTenantResult result =
        workloads::runMultiTenant(spec, config, conf);
    return result.tenants.front().streaming;
}

TEST(Streaming, ProcessesEveryBatchWhenStable)
{
    sched::StreamingOptions options;
    options.ratePerSec = 0.2;
    options.batches = 6;
    const spark::StreamingMetrics s = runStream(options);
    EXPECT_EQ(s.arrivals, 6u);
    EXPECT_EQ(s.processed, 6u);
    EXPECT_EQ(s.dropped, 0u);
    EXPECT_TRUE(s.stable());
    EXPECT_GT(s.p50LatencySec, 0.0);
    EXPECT_LE(s.p50LatencySec, s.p99LatencySec);
    EXPECT_LE(s.p99LatencySec, s.maxLatencySec);
}

TEST(Streaming, RunsAreDeterministic)
{
    sched::StreamingOptions options;
    options.ratePerSec = 0.5;
    options.batches = 5;
    options.poisson = true;
    const spark::StreamingMetrics a = runStream(options);
    const spark::StreamingMetrics b = runStream(options);
    EXPECT_DOUBLE_EQ(a.p50LatencySec, b.p50LatencySec);
    EXPECT_DOUBLE_EQ(a.p99LatencySec, b.p99LatencySec);
    EXPECT_DOUBLE_EQ(a.meanLatencySec, b.meanLatencySec);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.peakBacklog, b.peakBacklog);
}

TEST(Streaming, BackpressureBoundsTheBacklog)
{
    sched::StreamingOptions options;
    options.ratePerSec = 5.0; // far beyond the service rate
    options.batches = 12;
    options.maxBacklog = 3;
    const spark::StreamingMetrics s = runStream(options);
    EXPECT_EQ(s.arrivals, 12u);
    EXPECT_GT(s.dropped, 0u);
    EXPECT_EQ(s.processed + s.dropped, s.arrivals);
    EXPECT_LE(s.peakBacklog, 3);
    EXPECT_FALSE(s.stable());
}

TEST(Streaming, SloViolationsAreCounted)
{
    sched::StreamingOptions options;
    options.ratePerSec = 0.2;
    options.batches = 4;
    options.sloSeconds = 0.01; // every batch takes longer than this
    const spark::StreamingMetrics tight = runStream(options);
    EXPECT_EQ(tight.sloViolations, tight.processed);

    options.sloSeconds = 0.0; // no objective, no violations
    const spark::StreamingMetrics none = runStream(options);
    EXPECT_EQ(none.sloViolations, 0u);
}

TEST(Streaming, PoissonArrivalsDifferFromDeterministic)
{
    sched::StreamingOptions options;
    options.ratePerSec = 0.5;
    options.batches = 8;
    const spark::StreamingMetrics fixed = runStream(options);
    options.poisson = true;
    const spark::StreamingMetrics poisson = runStream(options);
    EXPECT_EQ(fixed.arrivals, poisson.arrivals);
    // Same rate, different gap sequence: the latency distribution
    // must not coincide.
    EXPECT_NE(fixed.meanLatencySec, poisson.meanLatencySec);
}

/**
 * The stability boundary is monotone in the arrival rate: once a rate
 * overruns the service rate, every higher rate does too.
 */
TEST(Streaming, StabilityBoundaryIsMonotone)
{
    const std::vector<double> rates = {0.1, 0.3, 0.9, 2.7};
    bool was_unstable = false;
    for (double rate : rates) {
        sched::StreamingOptions options;
        options.ratePerSec = rate;
        options.batches = 8;
        options.maxBacklog = 3;
        const spark::StreamingMetrics s = runStream(options);
        if (was_unstable)
            EXPECT_FALSE(s.stable())
                << "rate " << rate << " stable after a lower rate "
                << "was not";
        was_unstable = was_unstable || !s.stable();
    }
    EXPECT_TRUE(was_unstable) << "sweep never crossed the boundary";
}

/**
 * Distinct batch files must not alias in the page cache: every batch
 * is fresh data, so enabling the cache yields no read hits for a
 * single pass.
 */
TEST(Streaming, FreshBatchesDoNotHitThePageCache)
{
    sched::MultiJobSpec spec;
    sched::TenantSpec tenant;
    tenant.kind = sched::TenantSpec::Kind::Stream;
    tenant.workload = "lr";
    tenant.stream.ratePerSec = 0.5;
    tenant.stream.batches = 5;
    spec.tenants.push_back(tenant);
    cluster::ClusterConfig config = benchCluster();
    config.node.pageCache.enabled = true;
    spark::SparkConf conf;
    conf.executorCores = 8;
    const workloads::MultiTenantResult result =
        workloads::runMultiTenant(spec, config, conf);
    ASSERT_TRUE(result.pageCachePresent);
    EXPECT_GT(result.pageCache.missBytes, 0u);
    EXPECT_EQ(result.pageCache.hitBytes, 0u)
        << "same-shaped batches aliased to one cache stream";
}

TEST(Streaming, RegistryExposesStreamingWorkloads)
{
    const std::vector<std::string> names =
        workloads::registeredWorkloads();
    EXPECT_NE(std::find(names.begin(), names.end(), "streaming-lr"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "streaming-agg"),
              names.end());
    EXPECT_THROW(workloads::makeStreamingTemplate("nope", "", 4, kMiB),
                 FatalError);
}

TEST(Streaming, RejectsInvalidOptions)
{
    sched::StreamingOptions bad;
    bad.ratePerSec = 0.0;
    EXPECT_THROW(sched::StreamingDriver{bad}, FatalError);
    bad = sched::StreamingOptions{};
    bad.batches = 0;
    EXPECT_THROW(sched::StreamingDriver{bad}, FatalError);
    bad = sched::StreamingOptions{};
    bad.maxBacklog = 0;
    EXPECT_THROW(sched::StreamingDriver{bad}, FatalError);
}

} // namespace
} // namespace doppio
