/**
 * @file
 * Unit tests for the constraint-based cloud advisor.
 */

#include <gtest/gtest.h>

#include "cloud/advisor.h"

namespace doppio::cloud {
namespace {

constexpr Bytes kGB = 1000ULL * 1000 * 1000;

/** An I/O-bound single-stage app where bigger local disks help. */
model::AppModel
diskBoundApp()
{
    model::AppModel app;
    app.name = "diskBound";
    model::StageModel stage;
    stage.name = "shuffle";
    stage.tasks = 5000;
    stage.tAvg = 2.0;
    model::IoComponent read;
    read.op = storage::IoOp::ShuffleRead;
    read.bytes = static_cast<Bytes>(300) * kGB;
    read.requestSize = 30000.0;
    stage.io.push_back(read);
    app.stages.push_back(stage);
    return app;
}

CostOptimizer
makeOptimizer()
{
    CostOptimizer::Options options;
    options.sizeGrid = {200 * kGB, 500 * kGB, 1000 * kGB, 2000 * kGB};
    return CostOptimizer(diskBoundApp(), GcpPricing{}, options);
}

TEST(Advisor, CheapestUnderDeadlineSatisfiesIt)
{
    const CostOptimizer optimizer = makeOptimizer();
    const Advisor advisor(optimizer);
    const double deadline = 30.0 * 60.0;
    const auto result = advisor.cheapestUnderDeadline(deadline);
    ASSERT_TRUE(result.has_value());
    EXPECT_LE(result->seconds, deadline);
    // Not cheaper than the unconstrained optimum.
    EXPECT_GE(result->cost, optimizer.optimize().cost - 1e-9);
}

TEST(Advisor, TighterDeadlineCostsMore)
{
    const CostOptimizer optimizer = makeOptimizer();
    const Advisor advisor(optimizer);
    const auto loose = advisor.cheapestUnderDeadline(3600.0);
    const auto tight = advisor.cheapestUnderDeadline(900.0);
    ASSERT_TRUE(loose.has_value());
    if (tight.has_value()) {
        EXPECT_GE(tight->cost, loose->cost - 1e-9);
    }
}

TEST(Advisor, ImpossibleDeadlineIsEmpty)
{
    const Advisor advisor(makeOptimizer());
    EXPECT_FALSE(advisor.cheapestUnderDeadline(0.001).has_value());
}

TEST(Advisor, FastestUnderBudgetSatisfiesIt)
{
    const CostOptimizer optimizer = makeOptimizer();
    const Advisor advisor(optimizer);
    const double budget = optimizer.optimize().cost * 2.0;
    const auto result = advisor.fastestUnderBudget(budget);
    ASSERT_TRUE(result.has_value());
    EXPECT_LE(result->cost, budget);
}

TEST(Advisor, ZeroBudgetIsEmpty)
{
    const Advisor advisor(makeOptimizer());
    EXPECT_FALSE(advisor.fastestUnderBudget(0.0).has_value());
}

TEST(Advisor, ParetoFrontierIsMonotone)
{
    const Advisor advisor(makeOptimizer());
    const auto frontier = advisor.paretoFrontier();
    ASSERT_FALSE(frontier.empty());
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        // Sorted by runtime ascending; cost strictly decreasing.
        EXPECT_GE(frontier[i].seconds, frontier[i - 1].seconds);
        EXPECT_LT(frontier[i].cost, frontier[i - 1].cost);
    }
}

TEST(Advisor, FrontierContainsOptimum)
{
    const CostOptimizer optimizer = makeOptimizer();
    const Advisor advisor(optimizer);
    const Evaluation best = optimizer.optimize();
    const auto frontier = advisor.paretoFrontier();
    // The cheapest point is the frontier's last entry.
    EXPECT_NEAR(frontier.back().cost, best.cost, 1e-9);
}

} // namespace
} // namespace doppio::cloud
