/**
 * @file
 * Unit tests for the workload registry.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "workloads/registry.h"

namespace doppio::workloads {
namespace {

TEST(Registry, ListsNineWorkloads)
{
    // Seven batch workloads plus the two streaming templates.
    EXPECT_EQ(registeredWorkloads().size(), 9u);
}

TEST(Registry, EveryRegisteredNameConstructs)
{
    for (const std::string &name : registeredWorkloads()) {
        const auto workload = makeWorkload(name);
        ASSERT_NE(workload, nullptr) << name;
        EXPECT_FALSE(workload->name().empty());
    }
}

TEST(Registry, UnknownNameFatal)
{
    EXPECT_THROW(makeWorkload("no-such-app"), FatalError);
}

TEST(Registry, LrVariantsDiffer)
{
    const auto small = makeWorkload("lr-small");
    const auto large = makeWorkload("lr-large");
    EXPECT_EQ(small->name(), large->name());
    // Distinguishable by behaviour: run a tiny structural check via
    // the names list instead of executing; construction suffices here.
    SUCCEED();
}

/** Every registry workload runs end-to-end on a small cluster. */
class RegistryRuns : public ::testing::TestWithParam<const char *>
{};

TEST_P(RegistryRuns, ExecutesOnEvaluationCluster)
{
    const auto workload = makeWorkload(GetParam());
    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    spark::SparkConf conf;
    conf.executorCores = 36;
    const spark::AppMetrics metrics = workload->run(config, conf);
    EXPECT_GT(metrics.seconds(), 0.0);
    EXPECT_FALSE(metrics.jobs.empty());
    EXPECT_EQ(metrics.name, workload->name());
}

INSTANTIATE_TEST_SUITE_P(All, RegistryRuns,
                         ::testing::Values("gatk4", "lr-small", "svm",
                                           "pagerank",
                                           "triangle-count",
                                           "terasort"));

} // namespace
} // namespace doppio::workloads
