/**
 * @file
 * Unit tests for Equation 1 (the Doppio analytical model).
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "model/stage_model.h"

namespace doppio::model {
namespace {

/** A platform with flat bandwidth tables for exact arithmetic. */
PlatformProfile
flatProfile(double hdfsRead, double hdfsWrite, double localRead,
            double localWrite)
{
    PlatformProfile p;
    p.hdfsRead = LookupTable({{1.0, hdfsRead}, {1e9, hdfsRead}});
    p.hdfsWrite = LookupTable({{1.0, hdfsWrite}, {1e9, hdfsWrite}});
    p.localRead = LookupTable({{1.0, localRead}, {1e9, localRead}});
    p.localWrite = LookupTable({{1.0, localWrite}, {1e9, localWrite}});
    return p;
}

StageModel
scaleOnlyStage()
{
    StageModel s;
    s.name = "compute";
    s.tasks = 1200;
    s.tAvg = 9.0;
    s.deltaScale = 5.0;
    return s;
}

TEST(StageModel, ScaleRegime)
{
    const PlatformProfile p = flatProfile(1e9, 1e9, 1e9, 1e9);
    const StagePrediction pred =
        predictStage(scaleOnlyStage(), 10, 12, p);
    // M/(N*P)*t_avg + delta = 1200/120*9 + 5 = 95.
    EXPECT_NEAR(pred.seconds, 95.0, 1e-9);
    EXPECT_EQ(pred.bottleneck, Bottleneck::ComputeScale);
}

TEST(StageModel, ScalesWithCoresUntilLimit)
{
    const PlatformProfile p = flatProfile(1e9, 1e9, 1e9, 1e9);
    const StageModel s = scaleOnlyStage();
    const double t12 = predictStage(s, 10, 12, p).seconds;
    const double t24 = predictStage(s, 10, 24, p).seconds;
    // Parallel part halves; delta stays.
    EXPECT_NEAR(t24 - 5.0, (t12 - 5.0) / 2.0, 1e-9);
}

TEST(StageModel, ReadLimitRegime)
{
    StageModel s = scaleOnlyStage();
    IoComponent read;
    read.op = storage::IoOp::ShuffleRead;
    read.bytes = static_cast<Bytes>(300) * 1000 * 1000 * 1000;
    read.requestSize = 30000.0;
    read.delta = 2.0;
    s.io.push_back(read);
    // Local read bandwidth 15 MB/s (decimal): limit = 300e9/(10*15e6)
    // + 2 = 2002 s >> scale term.
    const PlatformProfile p = flatProfile(1e9, 1e9, 15e6, 1e9);
    const StagePrediction pred = predictStage(s, 10, 36, p);
    EXPECT_NEAR(pred.seconds, 2002.0, 1e-6);
    EXPECT_EQ(pred.bottleneck, Bottleneck::ReadLimit);
    EXPECT_EQ(pred.limitingOp, storage::IoOp::ShuffleRead);
    EXPECT_NEAR(pred.tReadLimit, 2002.0, 1e-6);
}

TEST(StageModel, WriteLimitRegime)
{
    StageModel s = scaleOnlyStage();
    IoComponent write;
    write.op = storage::IoOp::ShuffleWrite;
    write.bytes = static_cast<Bytes>(334) * 1000 * 1000 * 1000;
    write.requestSize = 350e6;
    s.io.push_back(write);
    const PlatformProfile p = flatProfile(1e9, 1e9, 1e9, 100e6);
    // Paper §V-A1 arithmetic: 334 GB / (3 * 100 MB/s) = 1113 s.
    const StagePrediction pred = predictStage(s, 3, 36, p);
    EXPECT_NEAR(pred.seconds, 334e9 / (3 * 100e6), 1e-6);
    EXPECT_EQ(pred.bottleneck, Bottleneck::WriteLimit);
}

TEST(StageModel, MaxOverComponents)
{
    StageModel s = scaleOnlyStage();
    IoComponent hdfs_read;
    hdfs_read.op = storage::IoOp::HdfsRead;
    hdfs_read.bytes = 100e9;
    hdfs_read.requestSize = 128e6;
    IoComponent shuffle_read;
    shuffle_read.op = storage::IoOp::ShuffleRead;
    shuffle_read.bytes = 334e9;
    shuffle_read.requestSize = 30000.0;
    s.io.push_back(hdfs_read);
    s.io.push_back(shuffle_read);
    const PlatformProfile p = flatProfile(480e6, 1e9, 15e6, 1e9);
    const StagePrediction pred = predictStage(s, 3, 36, p);
    // Shuffle read dominates: 334e9/(3*15e6) = 7422 s.
    EXPECT_NEAR(pred.seconds, 7422.2, 1.0);
    EXPECT_EQ(pred.limitingOp, storage::IoOp::ShuffleRead);
}

TEST(StageModel, PhysicalFactorAmplifiesWrites)
{
    StageModel s;
    s.name = "save";
    s.tasks = 10;
    s.tAvg = 0.1;
    IoComponent write;
    write.op = storage::IoOp::HdfsWrite;
    write.bytes = 100e9;
    write.requestSize = 128e6;
    write.physicalFactor = 2.0; // dfs.replication
    s.io.push_back(write);
    const PlatformProfile p = flatProfile(1e9, 100e6, 1e9, 1e9);
    const StagePrediction pred = predictStage(s, 10, 16, p);
    EXPECT_NEAR(pred.seconds, 2.0 * 100e9 / (10 * 100e6), 1e-6);
}

TEST(StageModel, GcExtensionScalesWithCores)
{
    const PlatformProfile p = flatProfile(1e9, 1e9, 1e9, 1e9);
    StageModel s = scaleOnlyStage();
    s.gcSensitivity = 1.0;
    const double t1 = predictStage(s, 10, 1, p).seconds;
    const double t36 = predictStage(s, 10, 36, p).seconds;
    // With g=1 the parallel term is P-independent:
    // M/(N*P)*t*(1+(P-1)) = M/N*t for all P.
    EXPECT_NEAR(t1 - s.deltaScale, t36 - s.deltaScale, 1e-6);
}

TEST(StageModel, ZeroByteComponentsIgnored)
{
    StageModel s = scaleOnlyStage();
    IoComponent empty;
    empty.op = storage::IoOp::ShuffleRead;
    empty.bytes = 0;
    s.io.push_back(empty);
    const PlatformProfile p = flatProfile(1.0, 1.0, 1.0, 1.0);
    EXPECT_NEAR(predictStage(s, 10, 12, p).seconds, 95.0, 1e-9);
}

TEST(StageModel, InvalidArgsFatal)
{
    const PlatformProfile p = flatProfile(1.0, 1.0, 1.0, 1.0);
    EXPECT_THROW(predictStage(scaleOnlyStage(), 0, 1, p), FatalError);
    EXPECT_THROW(predictStage(scaleOnlyStage(), 1, 0, p), FatalError);
}

TEST(StageModel, FindOp)
{
    StageModel s = scaleOnlyStage();
    IoComponent read;
    read.op = storage::IoOp::HdfsRead;
    read.bytes = 1;
    s.io.push_back(read);
    EXPECT_NE(s.findOp(storage::IoOp::HdfsRead), nullptr);
    EXPECT_EQ(s.findOp(storage::IoOp::ShuffleRead), nullptr);
}

TEST(AppModel, SumsStages)
{
    const PlatformProfile p = flatProfile(1e9, 1e9, 1e9, 1e9);
    AppModel app;
    app.name = "app";
    app.stages.push_back(scaleOnlyStage()); // 95 s at N=10, P=12
    app.stages.push_back(scaleOnlyStage());
    EXPECT_NEAR(app.predictSeconds(10, 12, p), 190.0, 1e-9);
}

TEST(AppModel, StageLookup)
{
    AppModel app;
    app.stages.push_back(scaleOnlyStage());
    EXPECT_EQ(app.stage("compute").tasks, 1200);
    EXPECT_THROW(app.stage("nope"), FatalError);
}

TEST(Bottleneck, Names)
{
    EXPECT_STREQ(bottleneckName(Bottleneck::ComputeScale), "scale");
    EXPECT_STREQ(bottleneckName(Bottleneck::ReadLimit), "read-limit");
    EXPECT_STREQ(bottleneckName(Bottleneck::WriteLimit), "write-limit");
}

/**
 * Property sweep: the turning point B. Below B the stage scales with
 * P; above it the prediction is constant (Fig. 6's three phases).
 */
class TurningPoint : public ::testing::TestWithParam<int>
{};

TEST_P(TurningPoint, AboveBAddingCoresDoesNotHelp)
{
    StageModel s;
    s.name = "s";
    s.tasks = 10000;
    s.tAvg = 4.0; // per-core shuffle throughput: 27e6/0.45... implied
    IoComponent read;
    read.op = storage::IoOp::ShuffleRead;
    read.bytes = static_cast<Bytes>(10000) * 27 * 1000 * 1000;
    read.requestSize = 30000.0;
    s.io.push_back(read);
    const PlatformProfile p = flatProfile(1e9, 1e9, 120e6, 1e9);
    const int cores = GetParam();
    const double t = predictStage(s, 10, cores, p).seconds;
    const double limit = 10000.0 * 27e6 / (10 * 120e6);
    EXPECT_GE(t, limit - 1e-9);
    // Once the scale term falls below the limit, time is pinned at it.
    const double scale = 10000.0 / (10.0 * cores) * 4.0;
    if (scale < limit)
        EXPECT_NEAR(t, limit, 1e-9);
    else
        EXPECT_NEAR(t, scale, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(CoreSweep, TurningPoint,
                         ::testing::Values(1, 2, 4, 8, 12, 18, 24, 36,
                                           48, 96));

} // namespace
} // namespace doppio::model
