/**
 * @file
 * Unit tests for the tracing/telemetry subsystem: collector and export
 * semantics, byte-identical output across runs, no-collector
 * pass-through invariance, and the per-stage phase-attribution report
 * (including its reconciliation assertion and the Fig. 6 cross-check).
 */

#include <map>
#include <sstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "dfs/hdfs.h"
#include "faults/fault_spec.h"
#include "sim/simulator.h"
#include "spark/metrics_json.h"
#include "spark/spark_context.h"
#include "spark/task_engine.h"
#include "trace/phase_report.h"
#include "trace/trace_collector.h"
#include "workloads/workload.h"

namespace doppio {
namespace {

// ----------------------------------------------------------------------
// Collector semantics.

TEST(TraceArgs, DeterministicFormatting)
{
    trace::TraceArgs args;
    args.add("bytes", std::uint64_t{42})
        .add("factor", 0.5)
        .add("status", "ok");
    EXPECT_EQ(args.str(), "\"bytes\":42,\"factor\":0.5,\"status\":\"ok\"");
}

TEST(TraceCollector, RecordsInEmissionOrder)
{
    trace::TraceCollector collector;
    // The engine's emission discipline: nested phase spans are emitted
    // at their end ticks, before the enclosing task span.
    collector.span(trace::nodePid(0), trace::coreTid(0), "phase",
                   "compute", 0, 1000);
    collector.span(trace::nodePid(0), trace::coreTid(0), "phase",
                   "hdfs_read", 1000, 3000);
    collector.span(trace::nodePid(0), trace::coreTid(0), "task", "g #0",
                   0, 3000);
    collector.instant(trace::kDriverPid, trace::kTidFaults, "fault",
                      "node_down", 2000);
    collector.counter(trace::nodePid(0), "cache", "c/dirty_bytes", 2500,
                      7.0);

    ASSERT_EQ(collector.size(), 5u);
    EXPECT_EQ(collector.events()[0].name, "compute");
    EXPECT_EQ(collector.events()[2].name, "g #0");
    EXPECT_EQ(collector.countByType(trace::TraceEvent::Type::Span), 3u);
    EXPECT_EQ(collector.countByType(trace::TraceEvent::Type::Instant),
              1u);
    EXPECT_EQ(collector.countByType(trace::TraceEvent::Type::Counter),
              1u);
    const auto counts = collector.countsByCategory();
    EXPECT_EQ(counts.at("phase"), 2u);
    EXPECT_EQ(counts.at("task"), 1u);
    EXPECT_EQ(counts.at("fault"), 1u);
    EXPECT_EQ(counts.at("cache"), 1u);
}

TEST(TraceCollectorDeathTest, SpanEndingBeforeStartPanics)
{
    trace::TraceCollector collector;
    EXPECT_DEATH(collector.span(1, 1, "task", "backwards", 2000, 1000),
                 "ends");
}

TEST(TraceCollector, ChromeJsonShape)
{
    trace::TraceCollector collector;
    collector.setProcessName(trace::nodePid(0), "node0");
    collector.setThreadName(trace::nodePid(0), trace::coreTid(0),
                            "core 0");
    collector.span(trace::nodePid(0), trace::coreTid(0), "task", "g #0",
                   1500, 4500,
                   trace::TraceArgs().add("attempt", 1));
    collector.instant(trace::kDriverPid, trace::kTidFaults, "fault",
                      "node_down", 2000);
    collector.counter(trace::nodePid(0), "cache", "c/dirty_bytes", 3000,
                      9.0);

    std::ostringstream os;
    collector.writeChromeJson(os);
    const std::string json = os.str();
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
                         0),
              0u);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    // Ticks are ns; ts/dur are µs with 3-decimal ns precision.
    EXPECT_NE(json.find("\"ts\":1.500,\"dur\":3.000"),
              std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"attempt\":1}"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"value\":9}"), std::string::npos);
    EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
}

// ----------------------------------------------------------------------
// End-to-end: a small shuffle workload with a node kill, traced
// through the Workload::run wiring (cluster + context hooks).

class MiniWorkload : public workloads::Workload
{
  public:
    std::string name() const override { return "mini"; }

  protected:
    void
    registerInputs(dfs::Hdfs &hdfs) const override
    {
        hdfs.addFile("input", gib(1));
    }

    void
    execute(spark::SparkContext &context) const override
    {
        spark::RddRef input = context.hadoopFile("input");
        spark::ShuffleSpec spec;
        spec.bytes = gib(2);
        spark::RddRef grouped =
            spark::Rdd::shuffled("grouped", input, 16, gib(2), spec);
        context.runJob("job", grouped, spark::ActionSpec::count());
    }
};

cluster::ClusterConfig
miniCluster()
{
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    config.node.pageCache.enabled = true;
    return config;
}

spark::SparkConf
miniConf()
{
    spark::SparkConf conf;
    conf.unifiedMemory = true;
    return conf;
}

TEST(TraceWorkload, EmitsFromEverySubsystem)
{
    const MiniWorkload workload;
    const faults::FaultSpec faults =
        faults::FaultSpec::parse("kill 1@2", "test");
    trace::TraceCollector collector;
    workload.run(miniCluster(), miniConf(), nullptr, &faults,
                 &collector);

    const auto counts = collector.countsByCategory();
    for (const char *category :
         {"stage", "task", "phase", "disk", "cache", "net", "fault"}) {
        EXPECT_TRUE(counts.count(category) != 0 &&
                    counts.at(category) > 0)
            << "no events from category " << category;
    }

    // Counter series must be sampled with non-decreasing ticks.
    std::map<std::pair<int, std::string>, Tick> lastTick;
    for (const trace::TraceEvent &event : collector.events()) {
        EXPECT_GE(event.end, event.start);
        if (event.type != trace::TraceEvent::Type::Counter)
            continue;
        auto key = std::make_pair(event.pid, event.name);
        auto it = lastTick.find(key);
        if (it != lastTick.end()) {
            EXPECT_GE(event.start, it->second)
                << "counter " << event.name << " went backwards";
        }
        lastTick[key] = event.start;
    }
}

TEST(TraceWorkload, ExportIsByteIdenticalAcrossRuns)
{
    const MiniWorkload workload;
    const faults::FaultSpec faults =
        faults::FaultSpec::parse("kill 1@2", "test");
    std::string exports[2];
    for (std::string &json : exports) {
        trace::TraceCollector collector;
        workload.run(miniCluster(), miniConf(), nullptr, &faults,
                     &collector);
        std::ostringstream os;
        collector.writeChromeJson(os);
        json = os.str();
    }
    EXPECT_GT(exports[0].size(), 0u);
    EXPECT_TRUE(exports[0] == exports[1])
        << "trace export differs between two identical runs";
}

TEST(TraceWorkload, NoCollectorLeavesOutputsUnchanged)
{
    const MiniWorkload workload;
    const faults::FaultSpec faults =
        faults::FaultSpec::parse("kill 1@2", "test");

    spark::TaskTrace untracedTasks;
    const spark::AppMetrics untraced = workload.run(
        miniCluster(), miniConf(), &untracedTasks, &faults);

    trace::TraceCollector collector;
    spark::TaskTrace tracedTasks;
    const spark::AppMetrics traced = workload.run(
        miniCluster(), miniConf(), &tracedTasks, &faults, &collector);
    ASSERT_GT(collector.size(), 0u);

    std::ostringstream a;
    std::ostringstream b;
    spark::writeMetricsJson(a, untraced);
    spark::writeMetricsJson(b, traced);
    EXPECT_TRUE(a.str() == b.str())
        << "metrics JSON changed when a collector was attached";

    std::ostringstream csvA;
    std::ostringstream csvB;
    untracedTasks.writeCsv(csvA);
    tracedTasks.writeCsv(csvB);
    EXPECT_TRUE(csvA.str() == csvB.str())
        << "task CSV changed when a collector was attached";
}

// ----------------------------------------------------------------------
// Phase attribution.

TEST(PhaseReport, HandBuiltTrackReconcilesExactly)
{
    trace::TraceCollector collector;
    const Tick wall = secondsToTicks(10.0);
    collector.span(trace::nodePid(0), trace::coreTid(0), "phase",
                   "compute", 0, secondsToTicks(4.0));
    collector.span(trace::nodePid(0), trace::coreTid(0), "phase",
                   "hdfs_read", secondsToTicks(4.0),
                   secondsToTicks(7.0));
    collector.span(trace::nodePid(0), trace::coreTid(0), "task", "g #0",
                   0, secondsToTicks(8.0));
    collector.span(trace::kDriverPid, trace::kTidStages, "stage", "s",
                   0, wall);

    const trace::PhaseReport report =
        trace::PhaseReport::build(collector, 1);
    ASSERT_EQ(report.stages.size(), 1u);
    const trace::PhaseBreakdown &stage = report.stages[0];
    EXPECT_NEAR(stage.compute, 4.0, 1e-9);
    EXPECT_NEAR(stage.read, 3.0, 1e-9);
    EXPECT_NEAR(stage.overhead, 1.0, 1e-9); // task minus its phases
    EXPECT_NEAR(stage.idle, 2.0, 1e-9);
    EXPECT_NEAR(stage.busy() + stage.idle, stage.wall(), 1e-9);
}

TEST(PhaseReportDeathTest, OverAttributionPanics)
{
    // Two fully-busy tracks averaged over one core track: attributed
    // time is twice the stage wall-clock, which cannot reconcile.
    trace::TraceCollector collector;
    const Tick wall = secondsToTicks(10.0);
    for (int slot = 0; slot < 2; ++slot) {
        collector.span(trace::nodePid(0), trace::coreTid(slot), "phase",
                       "compute", 0, wall);
        collector.span(trace::nodePid(0), trace::coreTid(slot), "task",
                       "g", 0, wall);
    }
    collector.span(trace::kDriverPid, trace::kTidStages, "stage", "s",
                   0, wall);
    EXPECT_DEATH(trace::PhaseReport::build(collector, 1),
                 "wall-clock");
}

/**
 * The Fig. 6 cross-check: run the bench's synthetic stage (T = 60 MB/s
 * per core, lambda = 4, BW = 120 MB/s) and require the trace-derived
 * attribution to match the engine's own phase accounting within 1%.
 */
TEST(PhaseReport, MatchesFig06PhaseTotals)
{
    storage::DiskParams disk;
    disk.model = "fig6-disk";
    disk.type = storage::DiskType::Ssd;
    disk.readIops = 1.0e6;
    disk.writeIops = 1.0e6;
    disk.readLatency = usToTicks(10.0);
    disk.writeLatency = usToTicks(10.0);
    disk.readBandwidth = mibps(120.0);
    disk.writeBandwidth = mibps(120.0);

    sim::Simulator sim;
    cluster::ClusterConfig config;
    config.numSlaves = 1;
    config.node.cores = 12;
    config.node.hdfsDisk = disk;
    config.node.localDisk = disk;
    config.taskJitterSigma = 0.25;
    cluster::Cluster cluster(sim, config);
    dfs::Hdfs hdfs(cluster);
    spark::SparkConf conf;
    conf.executorCores = 8;
    conf.taskDispatchOverheadSec = 0.0;
    conf.aggregateIo = false;
    spark::TaskEngine engine(cluster, hdfs, conf);

    trace::TraceCollector collector;
    cluster.setTraceCollector(&collector);
    engine.setTraceCollector(&collector);

    const Bytes task_bytes = mib(60);
    const int tasks = 96;
    spark::StageSpec stage;
    stage.name = "fig6";
    spark::IoPhaseSpec io;
    io.op = storage::IoOp::PersistRead;
    io.bytesPerTask = task_bytes;
    io.requestSize = mib(1);
    io.cpuPerByte = 0.5 / static_cast<double>(task_bytes);
    stage.groups.push_back(spark::TaskGroupSpec{
        "g", tasks, {io, spark::ComputePhaseSpec{3.0}}, task_bytes});
    const spark::StageMetrics metrics = engine.runStage(stage);

    const trace::PhaseReport report =
        trace::PhaseReport::build(collector, conf.executorCores);
    ASSERT_EQ(report.stages.size(), 1u);
    const trace::PhaseBreakdown &breakdown = report.stages[0];
    EXPECT_EQ(breakdown.stage, "fig6");

    // Ground truth from the engine's own accounting (what the fig06
    // bench prints): the read-phase seconds and, with dispatch
    // overhead zero, total task seconds.
    const double read_truth = metrics.forOp(storage::IoOp::PersistRead)
                                  .phaseSeconds.sum();
    const double task_truth = metrics.taskDuration.sum();
    const double cores = conf.executorCores;
    EXPECT_NEAR(breakdown.read * cores, read_truth,
                0.01 * read_truth);
    EXPECT_NEAR(breakdown.busy() * cores, task_truth,
                0.01 * task_truth);
    EXPECT_NEAR(breakdown.compute * cores, task_truth - read_truth,
                0.01 * (task_truth - read_truth));
    EXPECT_DOUBLE_EQ(breakdown.shuffle, 0.0);
    EXPECT_DOUBLE_EQ(breakdown.recovery, 0.0);
    // The reconciliation identity the report asserts internally.
    EXPECT_NEAR(breakdown.busy() + breakdown.idle, breakdown.wall(),
                0.01 * breakdown.wall());
}

} // namespace
} // namespace doppio
