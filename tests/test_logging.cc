/**
 * @file
 * Unit tests for status/error reporting.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "common/logging.h"

namespace doppio {
namespace {

TEST(Logging, FatalThrowsWithFormattedMessage)
{
    try {
        fatal("bad value %d for %s", 42, "cores");
        FAIL() << "fatal() must throw";
    } catch (const FatalError &error) {
        EXPECT_STREQ(error.what(), "bad value 42 for cores");
    }
}

TEST(Logging, FatalErrorIsARuntimeError)
{
    // Library embedders can catch the standard hierarchy.
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(Logging, VerboseFlagRoundTrip)
{
    const bool before = verboseEnabled();
    setVerbose(true);
    EXPECT_TRUE(verboseEnabled());
    setVerbose(false);
    EXPECT_FALSE(verboseEnabled());
    setVerbose(before);
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(warn("value %d looks odd", 7));
    setVerbose(true);
    EXPECT_NO_THROW(inform("progress %s", "ok"));
    setVerbose(false);
    EXPECT_NO_THROW(inform("silenced"));
}

TEST(Logging, LongMessagesAreNotTruncated)
{
    const std::string payload(2000, 'x');
    try {
        fatal("%s", payload.c_str());
        FAIL();
    } catch (const FatalError &error) {
        EXPECT_EQ(std::strlen(error.what()), payload.size());
    }
}

} // namespace
} // namespace doppio
