/**
 * @file
 * Unified memory manager tests: pool arithmetic, LRU eviction,
 * borrowing, spill, recompute-from-lineage, OOM retry, degrade-mem,
 * and legacy-mode invariance (DESIGN.md §9).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "dfs/hdfs.h"
#include "sim/simulator.h"
#include "spark/memory_manager.h"
#include "spark/metrics_json.h"
#include "spark/spark_context.h"
#include "workloads/terasort.h"

namespace doppio::spark {
namespace {

// ---------------------------------------------------------------------
// MemoryManager unit tests (pure pool arithmetic, no cluster).

TEST(MemoryManager, StorageMayFillTheWholePool)
{
    MemoryManager mm(mib(100), 0.5);
    std::vector<MemoryManager::BlockId> evicted;
    for (MemoryManager::BlockId id = 1; id <= 10; ++id)
        EXPECT_TRUE(mm.putBlock(id, mib(10), &evicted));
    EXPECT_TRUE(evicted.empty());
    EXPECT_EQ(mm.storageUsed(), mib(100));
    EXPECT_EQ(mm.blockCount(), 10u);
}

TEST(MemoryManager, CachingEvictsColdestFirst)
{
    MemoryManager mm(mib(30), 0.5);
    std::vector<MemoryManager::BlockId> evicted;
    mm.putBlock(1, mib(10), &evicted);
    mm.putBlock(2, mib(10), &evicted);
    mm.putBlock(3, mib(10), &evicted);
    mm.touchBlock(1); // 2 is now the coldest
    mm.putBlock(4, mib(10), &evicted);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], 2u);
    EXPECT_TRUE(mm.hasBlock(1));
    EXPECT_TRUE(mm.hasBlock(4));
}

TEST(MemoryManager, BlockLargerThanPoolIsRejectedWithoutEviction)
{
    MemoryManager mm(mib(30), 0.5);
    std::vector<MemoryManager::BlockId> evicted;
    mm.putBlock(1, mib(10), &evicted);
    EXPECT_FALSE(mm.putBlock(2, mib(40), &evicted));
    EXPECT_TRUE(evicted.empty());
    EXPECT_TRUE(mm.hasBlock(1));
}

TEST(MemoryManager, ExecutionBorrowsByEvictingDownToTheFloor)
{
    MemoryManager mm(mib(100), 0.5);
    std::vector<MemoryManager::BlockId> evicted;
    for (MemoryManager::BlockId id = 1; id <= 8; ++id)
        mm.putBlock(id, mib(10), &evicted);
    // 80 MiB cached, 20 MiB free; a 40 MiB reservation must evict two
    // blocks (coldest first), stopping as soon as it fits.
    const Bytes grant = mm.acquireExecution(mib(40), 1, &evicted);
    EXPECT_EQ(grant, mib(40));
    EXPECT_EQ(evicted, (std::vector<MemoryManager::BlockId>{1, 2}));
    EXPECT_EQ(mm.storageUsed(), mib(60));

    // The next reservation can only push storage down to the floor
    // (50 MiB): one more eviction, then the grant is cut to what is
    // free.
    evicted.clear();
    const Bytes second = mm.acquireExecution(mib(100), 1, &evicted);
    EXPECT_EQ(second, mib(10));
    EXPECT_EQ(evicted, (std::vector<MemoryManager::BlockId>{3}));
    EXPECT_EQ(mm.storageUsed(), mm.storageFloor());

    // Storage at the floor and execution holding the rest: OOM.
    evicted.clear();
    EXPECT_EQ(mm.acquireExecution(mib(1), 1, &evicted), 0ULL);
    EXPECT_TRUE(evicted.empty());
}

TEST(MemoryManager, StorageNeverEvictsExecution)
{
    MemoryManager mm(mib(100), 0.0);
    std::vector<MemoryManager::BlockId> evicted;
    EXPECT_EQ(mm.acquireExecution(mib(80), 1, nullptr), mib(80));
    // Only 20 MiB remain cacheable; a 30 MiB block can never fit.
    EXPECT_FALSE(mm.putBlock(1, mib(30), &evicted));
    EXPECT_TRUE(mm.putBlock(2, mib(20), &evicted));
    mm.releaseExecution(mib(80));
    EXPECT_TRUE(mm.putBlock(3, mib(30), &evicted));
}

TEST(MemoryManager, FairShareSplitsTheCapAcrossActiveTasks)
{
    MemoryManager mm(mib(100), 0.0);
    EXPECT_EQ(mm.acquireExecution(mib(100), 4, nullptr), mib(25));
}

TEST(MemoryManager, ReleaseClampsAtTheOutstandingTotal)
{
    MemoryManager mm(mib(100), 0.0);
    mm.acquireExecution(mib(10), 1, nullptr);
    mm.releaseExecution(mib(50));
    EXPECT_EQ(mm.executionUsed(), 0ULL);
}

TEST(MemoryManager, DegradeClampEvictsAndRestoreRefills)
{
    MemoryManager mm(mib(100), 0.5);
    std::vector<MemoryManager::BlockId> evicted;
    for (MemoryManager::BlockId id = 1; id <= 10; ++id)
        mm.putBlock(id, mib(10), &evicted);
    mm.setPoolFraction(0.5, &evicted);
    EXPECT_EQ(mm.poolSize(), mib(50));
    EXPECT_EQ(evicted.size(), 5u);
    EXPECT_EQ(mm.storageUsed(), mib(50));
    mm.setPoolFraction(1.0, &evicted);
    EXPECT_EQ(mm.poolSize(), mib(100));
    EXPECT_EQ(evicted.size(), 5u); // restoring evicts nothing
}

TEST(MemoryManager, ResetForgetsBlocksHoldsAndClamps)
{
    MemoryManager mm(mib(100), 0.5);
    std::vector<MemoryManager::BlockId> evicted;
    mm.putBlock(1, mib(10), &evicted);
    mm.acquireExecution(mib(20), 1, nullptr);
    mm.setPoolFraction(0.5, &evicted);
    mm.reset();
    EXPECT_EQ(mm.poolSize(), mib(100));
    EXPECT_EQ(mm.storageUsed(), 0ULL);
    EXPECT_EQ(mm.executionUsed(), 0ULL);
    EXPECT_EQ(mm.blockCount(), 0u);
    EXPECT_EQ(mm.peakStorageUsed(), 0ULL);
    EXPECT_EQ(mm.peakExecutionUsed(), 0ULL);
}

// ---------------------------------------------------------------------
// End-to-end fixture: 2 slaves x 4 cores, 1 GiB HDFS input
// (8 x 128 MiB partitions), unified memory on.

class UnifiedMemoryTest : public ::testing::Test
{
  protected:
    void
    init(Bytes executorMemory, double storageFraction = 0.5)
    {
        config_ = cluster::ClusterConfig::motivationCluster();
        config_.taskJitterSigma = 0.0;
        config_.numSlaves = 2;
        config_.node.cores = 4;
        config_.node.executorMemory = executorMemory;
        config_.node.ram = executorMemory + gib(4);
        cluster_ =
            std::make_unique<cluster::Cluster>(sim_, config_);
        hdfs_ = std::make_unique<dfs::Hdfs>(*cluster_);
        hdfs_->addFile("input", gib(1));
        conf_.executorCores = 4;
        conf_.unifiedMemory = true;
        conf_.memoryStorageFraction = storageFraction;
        context_ = std::make_unique<SparkContext>(*cluster_, *hdfs_,
                                                  conf_);
    }

    /** Per-node unified pool under init()'s parameters. */
    Bytes
    pool() const
    {
        return static_cast<Bytes>(
            static_cast<double>(config_.node.executorMemory) *
            conf_.memoryFraction);
    }

    RddRef
    persisted(StorageLevel level, Bytes memoryBytes)
    {
        RddRef input = context_->hadoopFile("input");
        RddRef parsed = Rdd::narrow("parsed", {input}, gib(1));
        parsed->memoryBytes = memoryBytes;
        parsed->persist(level);
        return parsed;
    }

    sim::Simulator sim_;
    cluster::ClusterConfig config_;
    SparkConf conf_;
    std::unique_ptr<cluster::Cluster> cluster_;
    std::unique_ptr<dfs::Hdfs> hdfs_;
    std::unique_ptr<SparkContext> context_;
};

TEST_F(UnifiedMemoryTest, FittingRddIsFullyCachedAndReadForFree)
{
    init(gib(4));
    RddRef parsed = persisted(StorageLevel::MemoryAndDisk, mib(256));
    context_->runJob("validate", parsed, ActionSpec::count());
    const BlockManager::ReadPlan plan =
        context_->blockManager().readPlan(parsed.get());
    EXPECT_EQ(plan.cached, plan.total);
    const JobMetrics &job =
        context_->runJob("iterate", parsed, ActionSpec::count());
    EXPECT_EQ(job.stages[0].forOp(storage::IoOp::HdfsRead).bytes, 0ULL);
    EXPECT_EQ(job.stages[0].forOp(storage::IoOp::PersistRead).bytes,
              0ULL);
    const MemoryMetrics memory =
        context_->blockManager().memoryMetrics();
    EXPECT_EQ(memory.evictedBlocks, 0u);
    EXPECT_GT(memory.peakStorageBytes, 0ULL);
}

TEST_F(UnifiedMemoryTest, OversizedMemoryAndDiskRddSpillsBlocksToDisk)
{
    // Pool = 192 MiB per node; 4 x 128 MiB partitions per node want
    // 512 MiB, so caching evicts all but the last block to disk.
    init(mib(256));
    RddRef parsed = persisted(StorageLevel::MemoryAndDisk, gib(1));
    context_->runJob("validate", parsed, ActionSpec::count());
    const BlockManager::ReadPlan plan =
        context_->blockManager().readPlan(parsed.get());
    EXPECT_EQ(plan.total, 8);
    EXPECT_EQ(plan.cached, 2);
    EXPECT_EQ(plan.disk, 6);
    EXPECT_EQ(plan.missing, 0);
    const MemoryMetrics memory =
        context_->blockManager().memoryMetrics();
    EXPECT_EQ(memory.evictedBlocks, 6u);
    EXPECT_EQ(memory.evictedToDiskBytes, 6 * mib(128));

    // The next read pays PersistRead for the disk share only.
    const JobMetrics &job =
        context_->runJob("iterate", parsed, ActionSpec::count());
    EXPECT_EQ(job.stages[0].forOp(storage::IoOp::HdfsRead).bytes, 0ULL);
    EXPECT_GT(job.stages[0].forOp(storage::IoOp::PersistRead).bytes,
              0ULL);
}

TEST_F(UnifiedMemoryTest, DroppedMemoryOnlyBlocksRecomputeFromLineage)
{
    init(mib(256));
    RddRef parsed = persisted(StorageLevel::MemoryOnly, gib(1));
    context_->runJob("validate", parsed, ActionSpec::count());
    const BlockManager::ReadPlan plan =
        context_->blockManager().readPlan(parsed.get());
    EXPECT_GT(plan.missing, 0);
    const JobMetrics &job =
        context_->runJob("iterate", parsed, ActionSpec::count());
    // Missing partitions re-read their lineage from HDFS.
    EXPECT_GT(job.stages[0].forOp(storage::IoOp::HdfsRead).bytes, 0ULL);
    EXPECT_GE(context_->blockManager().memoryMetrics()
                  .recomputedPartitions,
              static_cast<std::uint64_t>(plan.missing));
}

TEST_F(UnifiedMemoryTest, ShuffleShortfallSpillsThroughTheDisks)
{
    init(mib(256), /*storageFraction=*/0.0);
    RddRef input = context_->hadoopFile("input");
    ShuffleSpec spec;
    spec.bytes = gib(4); // 512 MiB per map task vs a 192 MiB pool
    RddRef grouped = Rdd::shuffled("grouped", input, 8, gib(4), spec);
    const JobMetrics &job =
        context_->runJob("sort", grouped, ActionSpec::count());
    const MemoryMetrics memory =
        context_->blockManager().memoryMetrics();
    EXPECT_GT(memory.spills, 0u);
    EXPECT_GT(memory.spilledBytes, 0ULL);
    EXPECT_EQ(memory.oomKills, 0u);
    Bytes spillWrites = 0;
    for (const JobMetrics &j : context_->metrics().jobs)
        for (const StageMetrics &stage : j.stages)
            spillWrites +=
                stage.forOp(storage::IoOp::SpillWrite).bytes;
    EXPECT_GT(spillWrites, 0ULL);
    EXPECT_GT(job.seconds(), 0.0);
}

TEST_F(UnifiedMemoryTest, ZeroGrantOomRetriesThenAbortsTheApplication)
{
    // storageFraction 1.0 protects the whole pool; filling it with
    // cached blocks leaves execution nothing to claim, ever.
    init(mib(256), /*storageFraction=*/1.0);
    RddRef parsed =
        persisted(StorageLevel::MemoryOnly, 2 * pool());
    context_->runJob("validate", parsed, ActionSpec::count());
    ASSERT_EQ(context_->blockManager()
                  .readPlan(parsed.get())
                  .cached,
              8);
    ShuffleSpec spec;
    spec.bytes = gib(2);
    RddRef grouped =
        Rdd::shuffled("grouped", parsed, 8, gib(2), spec);
    EXPECT_THROW(
        context_->runJob("sort", grouped, ActionSpec::count()),
        FatalError);
    const MemoryMetrics memory =
        context_->blockManager().memoryMetrics();
    EXPECT_GE(memory.oomKills,
              static_cast<std::uint64_t>(conf_.taskMaxFailures));
}

TEST_F(UnifiedMemoryTest, DegradeMemClampEvictsAndRestoreReopens)
{
    init(gib(4));
    RddRef parsed = persisted(StorageLevel::MemoryAndDisk, gib(2));
    context_->runJob("validate", parsed, ActionSpec::count());
    ASSERT_EQ(context_->blockManager().readPlan(parsed.get()).cached,
              8);
    cluster_->setMemoryFraction(0, 0.1);
    EXPECT_EQ(context_->blockManager().nodeMemory(0).poolSize(),
              static_cast<Bytes>(0.1 * static_cast<double>(pool())));
    const BlockManager::ReadPlan plan =
        context_->blockManager().readPlan(parsed.get());
    EXPECT_LT(plan.cached, 8);
    EXPECT_GT(plan.disk, 0);
    EXPECT_GT(context_->blockManager().memoryMetrics().evictedBlocks,
              0u);
    cluster_->setMemoryFraction(0, 1.0);
    EXPECT_EQ(context_->blockManager().nodeMemory(0).poolSize(),
              pool());
}

TEST_F(UnifiedMemoryTest, NodeDeathDropsItsBlocksForRecompute)
{
    init(gib(4));
    RddRef parsed = persisted(StorageLevel::MemoryAndDisk, mib(256));
    context_->runJob("validate", parsed, ActionSpec::count());
    cluster_->setNodeAlive(0, false);
    const BlockManager::ReadPlan plan =
        context_->blockManager().readPlan(parsed.get());
    EXPECT_EQ(plan.missing, 4);
    EXPECT_EQ(plan.cached, 4);
}

// ---------------------------------------------------------------------
// Whole-application determinism and legacy invariance.

namespace determinism {

cluster::ClusterConfig
pressuredCluster()
{
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    config.taskJitterSigma = 0.0;
    config.numSlaves = 2;
    config.node.cores = 4;
    config.node.executorMemory = gib(1);
    config.node.ram = gib(8);
    return config;
}

std::string
runTerasortJson(bool unifiedMemory)
{
    workloads::Terasort::Options options;
    options.dataBytes = gib(8);
    options.reducers = 8;
    workloads::Terasort workload(options);
    SparkConf conf;
    conf.executorCores = 4;
    conf.unifiedMemory = unifiedMemory;
    AppMetrics metrics = workload.run(pressuredCluster(), conf);
    return metricsJson(metrics);
}

} // namespace determinism

TEST(UnifiedMemoryDeterminism, BackToBackRunsEmitIdenticalJson)
{
    const std::string first = determinism::runTerasortJson(true);
    const std::string second = determinism::runTerasortJson(true);
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("\"memory\""), std::string::npos);
    EXPECT_NE(first.find("\"spilled_bytes\""), std::string::npos);
}

TEST(UnifiedMemoryDeterminism, LegacyModeCarriesNoMemoryBlock)
{
    const std::string first = determinism::runTerasortJson(false);
    const std::string second = determinism::runTerasortJson(false);
    EXPECT_EQ(first, second);
    EXPECT_EQ(first.find("\"memory\""), std::string::npos);
}

TEST(LegacyBlockManager, ModeSelectingCtorMatchesLegacyPlacement)
{
    sim::Simulator sim;
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    cluster::Cluster cluster(sim, config);
    SparkConf conf; // unifiedMemory off
    BlockManager modern(cluster, conf);
    BlockManager legacy(cluster.totalStorageMemory(),
                        conf.memoryExpansionFactor);
    EXPECT_FALSE(modern.unified());

    auto rdd = std::make_shared<Rdd>();
    rdd->name = "a";
    rdd->numPartitions = 10;
    rdd->bytes = gib(50);
    rdd->memoryBytes = gib(50);
    rdd->storageLevel = StorageLevel::MemoryAndDisk;
    EXPECT_EQ(modern.materialize(*rdd), legacy.materialize(*rdd));
    EXPECT_EQ(modern.memoryUsed(), legacy.memoryUsed());
    EXPECT_EQ(modern.capacity(), legacy.capacity());
}

} // namespace
} // namespace doppio::spark
