/**
 * @file
 * Unit tests for the persistent model store (DESIGN.md §16).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "model/model_store.h"

namespace doppio::model {
namespace {

constexpr Bytes kGB = 1000ULL * 1000 * 1000;

AppModel
sampleModel(const std::string &name)
{
    AppModel app;
    app.name = name;

    StageModel map;
    map.name = "mapStage";
    map.tasks = 976;
    map.tAvg = 30.25;
    map.deltaScale = 1.5;
    map.gcSensitivity = 0.125;
    IoComponent write;
    write.op = storage::IoOp::ShuffleWrite;
    write.bytes = 334 * kGB;
    write.requestSize = 350e6;
    write.physicalFactor = 1.0 / 3.0; // forces full %.17g round-trip
    write.delta = 0.1234567890123456789;
    write.soloPhaseSecondsPerTask = 2.5;
    map.io.push_back(write);
    app.stages.push_back(map);

    StageModel reduce;
    reduce.name = "reduce";
    reduce.tasks = 12000;
    reduce.tAvg = 9.0;
    IoComponent read;
    read.op = storage::IoOp::ShuffleRead;
    read.bytes = 334 * kGB;
    read.requestSize = 30000.0;
    reduce.io.push_back(read);
    app.stages.push_back(reduce);
    return app;
}

void
expectSameModel(const AppModel &a, const AppModel &b)
{
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.stages.size(), b.stages.size());
    for (std::size_t s = 0; s < a.stages.size(); ++s) {
        const StageModel &x = a.stages[s];
        const StageModel &y = b.stages[s];
        EXPECT_EQ(x.name, y.name);
        EXPECT_EQ(x.tasks, y.tasks);
        EXPECT_EQ(x.tAvg, y.tAvg);
        EXPECT_EQ(x.deltaScale, y.deltaScale);
        EXPECT_EQ(x.gcSensitivity, y.gcSensitivity);
        ASSERT_EQ(x.io.size(), y.io.size());
        for (std::size_t k = 0; k < x.io.size(); ++k) {
            EXPECT_EQ(x.io[k].op, y.io[k].op);
            EXPECT_EQ(x.io[k].bytes, y.io[k].bytes);
            EXPECT_EQ(x.io[k].requestSize, y.io[k].requestSize);
            EXPECT_EQ(x.io[k].physicalFactor, y.io[k].physicalFactor);
            EXPECT_EQ(x.io[k].delta, y.io[k].delta);
            EXPECT_EQ(x.io[k].soloPhaseSecondsPerTask,
                      y.io[k].soloPhaseSecondsPerTask);
        }
    }
}

TEST(ModelStore, RoundTripsBitExactDoubles)
{
    std::map<std::string, AppModel> models;
    models["gatk4|n3"] = sampleModel("GATK4");
    models["lr-small|n3"] = sampleModel("lr-small");

    std::ostringstream out;
    ModelStore::write(out, models);
    std::istringstream in(out.str());
    const auto loaded = ModelStore::read(in, "test");

    ASSERT_EQ(loaded.size(), 2u);
    for (const auto &[key, model] : models) {
        ASSERT_TRUE(loaded.count(key)) << key;
        expectSameModel(model, loaded.at(key));
    }
}

TEST(ModelStore, WriteIsCanonical)
{
    // Same map, same bytes — the store can be diffed across restarts.
    std::map<std::string, AppModel> models;
    models["b"] = sampleModel("B");
    models["a"] = sampleModel("A");
    std::ostringstream first, second;
    ModelStore::write(first, models);
    ModelStore::write(second, models);
    EXPECT_EQ(first.str(), second.str());
    // Sorted by key regardless of insertion history.
    EXPECT_LT(first.str().find("model a "), first.str().find("model b "));
}

TEST(ModelStore, CommentsAndBlankLinesAreSkipped)
{
    std::map<std::string, AppModel> models;
    models["k"] = sampleModel("K");
    std::ostringstream out;
    ModelStore::write(out, models);
    const std::string text = "# a comment\n\n" + out.str() +
                             "\n# trailing comment\n";
    std::istringstream in(text);
    const auto loaded = ModelStore::read(in, "test");
    ASSERT_EQ(loaded.size(), 1u);
    expectSameModel(models.at("k"), loaded.at("k"));
}

TEST(ModelStore, StrictParserRejectsMangledStores)
{
    std::map<std::string, AppModel> models;
    models["k"] = sampleModel("K");
    std::ostringstream out;
    ModelStore::write(out, models);
    const std::string good = out.str();

    const auto expectReject = [](const std::string &text) {
        std::istringstream in(text);
        EXPECT_THROW(ModelStore::read(in, "test"), FatalError) << text;
    };
    // Wrong magic, wrong version, unknown record kind, bad number,
    // truncation, duplicate keys: all fatal, none half-parse.
    expectReject("not-a-store v1\n");
    expectReject("doppio-model-store v999\n");
    std::string unknown = good;
    unknown.replace(unknown.find("stage "), 6, "stag3 ");
    expectReject(unknown);
    std::string badNumber = good;
    badNumber.replace(badNumber.find("976"), 3, "abc");
    expectReject(badNumber);
    expectReject(good.substr(0, good.size() / 2));
    expectReject(good + good.substr(good.find("model ")));
    std::string badOp = good;
    badOp.replace(badOp.find("shuffle_write"),
                  std::string("shuffle_write").size(), "bogus_op");
    expectReject(badOp);
}

TEST(ModelStore, MissingFileLoadsEmptyAndSaveRoundTrips)
{
    const std::string path =
        testing::TempDir() + "model_store_test.txt";
    std::remove(path.c_str());
    EXPECT_TRUE(ModelStore::loadFile(path).empty());

    std::map<std::string, AppModel> models;
    models["gatk4|n3"] = sampleModel("GATK4");
    ModelStore::saveFile(path, models);
    const auto loaded = ModelStore::loadFile(path);
    ASSERT_EQ(loaded.size(), 1u);
    expectSameModel(models.at("gatk4|n3"), loaded.at("gatk4|n3"));
    std::remove(path.c_str());
}

TEST(ModelStore, RejectsUnserializableNames)
{
    // Keys and names embed in a whitespace-separated format; ones that
    // would not round-trip are rejected at write time.
    std::map<std::string, AppModel> models;
    models["bad key"] = sampleModel("K");
    std::ostringstream out;
    EXPECT_THROW(ModelStore::write(out, models), FatalError);
}

} // namespace
} // namespace doppio::model
