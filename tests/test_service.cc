/**
 * @file
 * Tests for the what-if planning service (src/service/): protocol
 * parsing, the circuit breaker state machine, deadline budgets, and
 * the deterministic virtual-time service loop's robustness behaviors
 * (cache/dedup, load shedding, degradation, retries, breaker
 * fallback, transcript determinism).
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "service/breaker.h"
#include "service/planner.h"
#include "service/protocol.h"
#include "service/server.h"

using namespace doppio;
using service::CircuitBreaker;
using service::PlanningService;
using service::Request;
using service::Response;
using service::ServiceConfig;

namespace {

/** A fast-planning service config: cheap virtual slow path. */
ServiceConfig
testConfig()
{
    ServiceConfig config;
    config.planner.seed = 7;
    return config;
}

const Response &
findResponse(const PlanningService &svc, const std::string &id)
{
    for (const Response &r : svc.responseLog())
        if (r.id == id)
            return r;
    ADD_FAILURE() << "no response with id " << id;
    static Response none;
    return none;
}

} // namespace

// ---------------------------------------------------------------- protocol

TEST(Protocol, ParsesPlanRequest)
{
    const Request req = Request::parseLine(
        "{\"id\":\"q1\",\"workload\":\"lr-small\",\"mode\":"
        "\"cheapest\",\"deadline_s\":600,\"workers\":6,"
        "\"timeout_ms\":5000,\"at_ms\":42}");
    EXPECT_EQ(req.kind, Request::Kind::Plan);
    EXPECT_EQ(req.id, "q1");
    EXPECT_EQ(req.workload, "lr-small");
    EXPECT_EQ(req.mode, Request::Mode::CheapestUnderDeadline);
    EXPECT_DOUBLE_EQ(req.deadlineSec, 600.0);
    EXPECT_EQ(req.workers, 6);
    EXPECT_DOUBLE_EQ(req.timeoutMs, 5000.0);
    EXPECT_DOUBLE_EQ(req.atMs, 42.0);
}

TEST(Protocol, InfersModeFromConstraint)
{
    EXPECT_EQ(Request::parseLine(
                  "{\"id\":\"a\",\"workload\":\"svm\"}")
                  .mode,
              Request::Mode::MinCost);
    EXPECT_EQ(Request::parseLine("{\"id\":\"a\",\"workload\":\"svm\","
                                 "\"deadline_s\":60}")
                  .mode,
              Request::Mode::CheapestUnderDeadline);
    EXPECT_EQ(Request::parseLine("{\"id\":\"a\",\"workload\":\"svm\","
                                 "\"budget_usd\":10}")
                  .mode,
              Request::Mode::FastestUnderBudget);
    // Both constraints without an explicit mode is ambiguous.
    EXPECT_THROW(
        Request::parseLine("{\"id\":\"a\",\"workload\":\"svm\","
                           "\"deadline_s\":60,\"budget_usd\":10}"),
        FatalError);
}

TEST(Protocol, RejectsMalformedLines)
{
    EXPECT_THROW(Request::parseLine("not json"), FatalError);
    EXPECT_THROW(Request::parseLine("{\"id\":\"a\"}"), FatalError);
    EXPECT_THROW(Request::parseLine(
                     "{\"id\":\"a\",\"workload\":\"x\",\"typo\":1}"),
                 FatalError);
    EXPECT_THROW(Request::parseLine("{\"id\":\"a\",\"id\":\"b\"}"),
                 FatalError);
    EXPECT_THROW(
        Request::parseLine("{\"id\":\"a\",\"workload\":\"x\"} junk"),
        FatalError);
    EXPECT_THROW(Request::parseLine("{\"cmd\":\"reboot\"}"),
                 FatalError);
    // Constraint/mode mismatches.
    EXPECT_THROW(Request::parseLine("{\"id\":\"a\",\"workload\":"
                                    "\"x\",\"mode\":\"cheapest\"}"),
                 FatalError);
    EXPECT_THROW(Request::parseLine("{\"id\":\"a\",\"workload\":"
                                    "\"x\",\"mode\":\"fastest\"}"),
                 FatalError);
}

TEST(Protocol, CacheKeyIgnoresIdAndTimes)
{
    const Request a = Request::parseLine(
        "{\"id\":\"a\",\"workload\":\"svm\",\"deadline_s\":60,"
        "\"at_ms\":1}");
    const Request b = Request::parseLine(
        "{\"id\":\"b\",\"workload\":\"svm\",\"deadline_s\":60,"
        "\"at_ms\":999,\"timeout_ms\":5}");
    EXPECT_EQ(a.cacheKey(), b.cacheKey());
    const Request c = Request::parseLine(
        "{\"id\":\"c\",\"workload\":\"svm\",\"deadline_s\":61}");
    EXPECT_NE(a.cacheKey(), c.cacheKey());
}

TEST(Protocol, ControlRequests)
{
    EXPECT_EQ(Request::parseLine("{\"cmd\":\"stats\"}").kind,
              Request::Kind::Stats);
    EXPECT_EQ(Request::parseLine("{\"cmd\":\"health\"}").kind,
              Request::Kind::Health);
}

TEST(Protocol, ResponseJsonShape)
{
    Response r;
    r.id = "q";
    r.status = "ok";
    r.haveConfig = true;
    r.config = "cfg";
    r.costUsd = 1.5;
    r.runtimeSec = 10.0;
    const std::string json = r.toJson();
    EXPECT_NE(json.find("\"id\":\"q\""), std::string::npos);
    EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(json.find("\"cost_usd\":1.5"), std::string::npos);
    EXPECT_NE(json.find("\"degraded\":false"), std::string::npos);
    // Empty optional fields are omitted entirely.
    EXPECT_EQ(json.find("reason"), std::string::npos);
    EXPECT_EQ(json.find("cache"), std::string::npos);
}

// ----------------------------------------------------------------- breaker

TEST(Breaker, TripsOnLatencyEmaAndRecovers)
{
    CircuitBreaker::Config config;
    config.latencyThresholdMs = 100.0;
    config.emaAlpha = 1.0; // last sample only, for a crisp test
    config.cooldownMs = 50.0;
    CircuitBreaker breaker(config);

    EXPECT_TRUE(breaker.allowSlowPath(0.0));
    breaker.recordSlowPath(80.0, 0.0);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    breaker.recordSlowPath(200.0, 1.0);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(breaker.trips(), 1u);

    // Open: denied until the cooldown elapses.
    EXPECT_FALSE(breaker.allowSlowPath(10.0));
    // Cooldown elapsed: half-open, exactly one probe.
    EXPECT_TRUE(breaker.allowSlowPath(60.0));
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
    EXPECT_FALSE(breaker.allowSlowPath(61.0));
    // Healthy probe closes the circuit and forgives history.
    breaker.recordSlowPath(50.0, 62.0);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    EXPECT_DOUBLE_EQ(breaker.emaMs(), 50.0);
}

TEST(Breaker, FailedProbeReopens)
{
    CircuitBreaker::Config config;
    config.latencyThresholdMs = 100.0;
    config.emaAlpha = 1.0;
    config.cooldownMs = 50.0;
    CircuitBreaker breaker(config);
    breaker.recordSlowPath(200.0, 0.0);
    ASSERT_EQ(breaker.state(), CircuitBreaker::State::Open);
    EXPECT_TRUE(breaker.allowSlowPath(60.0));
    breaker.recordSlowPath(300.0, 61.0); // probe over threshold
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(breaker.trips(), 2u);
    // releaseProbe frees an abandoned half-open probe slot.
    EXPECT_TRUE(breaker.allowSlowPath(120.0));
    breaker.releaseProbe();
    EXPECT_TRUE(breaker.allowSlowPath(121.0));
}

TEST(Breaker, TripsOnQueueDepthAndFailure)
{
    CircuitBreaker::Config config;
    config.depthThreshold = 4;
    CircuitBreaker breaker(config);
    breaker.noteQueueDepth(3, 0.0);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    breaker.noteQueueDepth(4, 1.0);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);

    CircuitBreaker other(CircuitBreaker::Config{});
    other.recordFailure(0.0);
    EXPECT_EQ(other.state(), CircuitBreaker::State::Open);
}

// ------------------------------------------------------------------ budget

TEST(DeadlineBudget, ChargesClampAtTotal)
{
    service::DeadlineBudget budget(100.0);
    EXPECT_DOUBLE_EQ(budget.charge(60.0), 60.0);
    EXPECT_FALSE(budget.exhausted());
    // Overcharge clamps: completion lands exactly at the deadline.
    EXPECT_DOUBLE_EQ(budget.charge(60.0), 40.0);
    EXPECT_TRUE(budget.exhausted());
    EXPECT_DOUBLE_EQ(budget.spentMs(), 100.0);
    EXPECT_DOUBLE_EQ(budget.charge(10.0), 0.0);
    EXPECT_THROW(service::DeadlineBudget(0.0), FatalError);
}

// ----------------------------------------------------------------- service

TEST(Service, ColdQueryThenCacheHitAndDedup)
{
    PlanningService svc(testConfig());
    svc.runScript({
        "# cold query profiles, fits, searches and validates",
        "{\"id\":\"cold\",\"workload\":\"lr-small\",\"at_ms\":0}",
        "{\"id\":\"twin\",\"workload\":\"lr-small\",\"at_ms\":1}",
        "{\"id\":\"warm\",\"workload\":\"lr-small\",\"at_ms\":50000}",
    });
    const Response &cold = findResponse(svc, "cold");
    EXPECT_EQ(cold.status, "ok");
    EXPECT_EQ(cold.cacheOutcome, "miss");
    EXPECT_TRUE(cold.haveConfig);
    EXPECT_FALSE(cold.degraded);
    EXPECT_FALSE(cold.modelOnly);
    EXPECT_EQ(cold.cellsDone, cold.cellsTotal);
    EXPECT_GT(cold.cellsTotal, 0);

    // Same key in flight: answered from the leader's completion.
    const Response &twin = findResponse(svc, "twin");
    EXPECT_EQ(twin.status, "ok");
    EXPECT_EQ(twin.cacheOutcome, "dedup");
    EXPECT_DOUBLE_EQ(twin.tMs, cold.tMs);

    // Same key later: served from the result cache for free.
    const Response &warm = findResponse(svc, "warm");
    EXPECT_EQ(warm.cacheOutcome, "hit");
    EXPECT_DOUBLE_EQ(warm.latencyMs, 0.0);
    EXPECT_EQ(warm.config, cold.config);

    const service::ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.ok, 3u);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.dedupJoins, 1u);
}

TEST(Service, OverloadShedsInsteadOfQueueingUnboundedly)
{
    ServiceConfig config = testConfig();
    config.workers = 1;
    config.queueCapacity = 2;
    PlanningService svc(config);
    // Five concurrent distinct keys onto one worker with queue cap 2:
    // the overflow must shed, oldest first.
    svc.runScript({
        "{\"id\":\"a\",\"workload\":\"lr-small\",\"at_ms\":0}",
        "{\"id\":\"b\",\"workload\":\"lr-small\",\"deadline_s\":"
        "90000,\"at_ms\":1}",
        "{\"id\":\"c\",\"workload\":\"lr-small\",\"deadline_s\":"
        "91000,\"at_ms\":2}",
        "{\"id\":\"d\",\"workload\":\"lr-small\",\"deadline_s\":"
        "92000,\"at_ms\":3}",
        "{\"id\":\"e\",\"workload\":\"lr-small\",\"deadline_s\":"
        "93000,\"at_ms\":4}",
    });
    const service::ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.shed, 2u);
    EXPECT_LE(stats.maxQueueDepth, 2u);
    // Drop-oldest: the queue's heads (b, c) were shed to admit d, e.
    EXPECT_EQ(findResponse(svc, "b").status, "shed");
    EXPECT_EQ(findResponse(svc, "b").reason, "queue_full");
    EXPECT_EQ(findResponse(svc, "c").status, "shed");
    EXPECT_EQ(findResponse(svc, "d").status, "ok");
    EXPECT_EQ(findResponse(svc, "e").status, "ok");
}

TEST(Service, RejectNewPolicyShedsTheNewcomer)
{
    ServiceConfig config = testConfig();
    config.workers = 1;
    config.queueCapacity = 1;
    config.dropOldest = false;
    PlanningService svc(config);
    svc.runScript({
        "{\"id\":\"a\",\"workload\":\"lr-small\",\"at_ms\":0}",
        "{\"id\":\"b\",\"workload\":\"lr-small\",\"deadline_s\":"
        "90000,\"at_ms\":1}",
        "{\"id\":\"c\",\"workload\":\"lr-small\",\"deadline_s\":"
        "91000,\"at_ms\":2}",
    });
    EXPECT_EQ(findResponse(svc, "b").status, "ok");
    EXPECT_EQ(findResponse(svc, "c").status, "shed");
    EXPECT_EQ(findResponse(svc, "c").reason, "queue_full");
}

TEST(Service, TokenBucketRejectsBeyondBurst)
{
    ServiceConfig config = testConfig();
    config.ratePerSec = 0.001; // effectively no refill within the test
    config.burst = 1.0;
    PlanningService svc(config);
    svc.runScript({
        "{\"id\":\"a\",\"workload\":\"lr-small\",\"at_ms\":0}",
        "{\"id\":\"b\",\"workload\":\"lr-small\",\"deadline_s\":"
        "90000,\"at_ms\":1}",
    });
    EXPECT_EQ(findResponse(svc, "a").status, "ok");
    const Response &b = findResponse(svc, "b");
    EXPECT_EQ(b.status, "rejected");
    EXPECT_EQ(b.reason, "rate_limit");
    EXPECT_EQ(svc.stats().rejected, 1u);
}

TEST(Service, ColdQueryWithTinyBudgetDegradesInsteadOfOverrunning)
{
    PlanningService svc(testConfig());
    svc.runScript({
        "{\"id\":\"rush\",\"workload\":\"lr-small\",\"timeout_ms\":"
        "100,\"at_ms\":0}",
    });
    const Response &rush = findResponse(svc, "rush");
    // 100 ms cannot even finish profiling: a flagged-degraded error,
    // emitted exactly at the deadline, never past it.
    EXPECT_EQ(rush.status, "error");
    EXPECT_EQ(rush.reason, "deadline");
    EXPECT_TRUE(rush.degraded);
    EXPECT_LE(rush.latencyMs, 100.0);
}

TEST(Service, WarmQueryWithPartialBudgetReturnsPartialGrid)
{
    PlanningService svc(testConfig());
    svc.runScript({
        "{\"id\":\"prime\",\"workload\":\"lr-small\",\"at_ms\":0}",
        // Model is warm at 50s; 150 ms buys 30 grid cells (5 ms each)
        // and no validation.
        "{\"id\":\"partial\",\"workload\":\"lr-small\",\"deadline_s\":"
        "90000,\"timeout_ms\":150,\"at_ms\":50000}",
    });
    const Response &partial = findResponse(svc, "partial");
    EXPECT_EQ(partial.status, "ok");
    EXPECT_TRUE(partial.degraded);
    EXPECT_TRUE(partial.modelOnly);
    EXPECT_TRUE(partial.haveConfig);
    EXPECT_GT(partial.cellsDone, 0);
    EXPECT_LT(partial.cellsDone, partial.cellsTotal);
    EXPECT_LE(partial.latencyMs, 150.0);
}

TEST(Service, OpenBreakerServesModelOnlyAndShedsColdQueries)
{
    ServiceConfig config = testConfig();
    // Any slow path trips the breaker; cooldown far beyond the script.
    config.breaker.latencyThresholdMs = 1.0;
    config.breaker.cooldownMs = 1e9;
    PlanningService svc(config);
    svc.runScript({
        "{\"id\":\"prime\",\"workload\":\"lr-small\",\"at_ms\":0}",
        // Warm model, breaker open: Eq. 1 answer without validation.
        "{\"id\":\"warmish\",\"workload\":\"lr-small\",\"deadline_s\":"
        "90000,\"at_ms\":50000}",
        // Cold workload, breaker open: shed, not queued.
        "{\"id\":\"cold\",\"workload\":\"svm\",\"at_ms\":50001}",
    });
    EXPECT_EQ(svc.breaker().state(), CircuitBreaker::State::Open);
    const Response &warmish = findResponse(svc, "warmish");
    EXPECT_EQ(warmish.status, "ok");
    EXPECT_TRUE(warmish.modelOnly);
    EXPECT_TRUE(warmish.haveConfig);
    const Response &cold = findResponse(svc, "cold");
    EXPECT_EQ(cold.status, "shed");
    EXPECT_EQ(cold.reason, "circuit_open");
}

TEST(Service, QueuedRequestPastItsDeadlineExpiresFlaggedDegraded)
{
    ServiceConfig config = testConfig();
    config.workers = 1;
    PlanningService svc(config);
    svc.runScript({
        // Occupies the only worker for ~11.8k virtual ms.
        "{\"id\":\"long\",\"workload\":\"lr-small\",\"at_ms\":0}",
        // Queued behind it with a 1s budget: expired at dispatch.
        "{\"id\":\"late\",\"workload\":\"lr-small\",\"deadline_s\":"
        "90000,\"timeout_ms\":1000,\"at_ms\":1}",
    });
    const Response &late = findResponse(svc, "late");
    EXPECT_EQ(late.status, "expired");
    EXPECT_TRUE(late.degraded);
    EXPECT_EQ(svc.stats().expired, 1u);
}

TEST(Service, TransientSlowPathFailuresAreRetriedWithBackoff)
{
    ServiceConfig config = testConfig();
    config.planner.evalFailRate = 0.30;
    config.planner.seed = 11;
    PlanningService svc(config);
    svc.runScript({
        "{\"id\":\"flaky\",\"workload\":\"lr-small\",\"timeout_ms\":"
        "60000,\"at_ms\":0}",
    });
    const Response &flaky = findResponse(svc, "flaky");
    EXPECT_EQ(flaky.status, "ok");
    // With a 30% per-attempt failure rate across >= 5 slow-path runs,
    // this seed sees at least one retry; the backoff is charged to the
    // request's own budget.
    EXPECT_GT(flaky.retries, 0);
    EXPECT_GT(flaky.backoffMs, 0.0);
    EXPECT_EQ(svc.stats().retries,
              static_cast<std::uint64_t>(flaky.retries));
}

TEST(Service, ExhaustedRetriesFailTheSlowPathAndTripTheBreaker)
{
    ServiceConfig config = testConfig();
    config.planner.evalFailRate = 0.999;
    config.planner.maxRetries = 1;
    PlanningService svc(config);
    svc.runScript({
        "{\"id\":\"doomed\",\"workload\":\"lr-small\",\"at_ms\":0}",
    });
    const Response &doomed = findResponse(svc, "doomed");
    EXPECT_EQ(doomed.status, "error");
    EXPECT_EQ(doomed.reason, "slow_path_failed");
    EXPECT_EQ(doomed.retries, 1);
    EXPECT_EQ(svc.breaker().state(), CircuitBreaker::State::Open);
}

TEST(Service, InfeasibleConstraintIsAnError)
{
    PlanningService svc(testConfig());
    svc.runScript({
        "{\"id\":\"prime\",\"workload\":\"lr-small\",\"at_ms\":0}",
        // No configuration runs lr-small in one second.
        "{\"id\":\"impossible\",\"workload\":\"lr-small\","
        "\"deadline_s\":1,\"at_ms\":50000}",
    });
    const Response &impossible = findResponse(svc, "impossible");
    EXPECT_EQ(impossible.status, "error");
    EXPECT_EQ(impossible.reason, "infeasible");
}

TEST(Service, UnknownWorkloadAndBadJsonAreErrors)
{
    PlanningService svc(testConfig());
    const std::vector<std::string> transcript = svc.runScript({
        "{\"id\":\"who\",\"workload\":\"no-such-app\",\"at_ms\":0}",
        "this is not json",
    });
    EXPECT_EQ(findResponse(svc, "who").reason, "unknown_workload");
    EXPECT_EQ(svc.stats().errors, 2u);
    ASSERT_EQ(transcript.size(), 2u);
    EXPECT_NE(transcript[0].find("bad_request"), std::string::npos);
}

TEST(Service, ScriptReplayIsByteIdentical)
{
    const service::Script script = {
        "{\"id\":\"a\",\"workload\":\"lr-small\",\"at_ms\":0}",
        "{\"id\":\"b\",\"workload\":\"lr-small\",\"deadline_s\":"
        "90000,\"at_ms\":5}",
        "{\"id\":\"c\",\"workload\":\"lr-small\",\"at_ms\":30000}",
        "{\"cmd\":\"stats\",\"at_ms\":40000}",
    };
    PlanningService first(testConfig());
    PlanningService second(testConfig());
    EXPECT_EQ(first.runScript(script), second.runScript(script));
}

// ------------------------------------------------- cold-query coalescing

namespace {

/** One cold leader occupying the single worker, then three queued
 *  same-profile queries with distinct constraints (distinct cache
 *  keys, so none dedups). */
const service::Script kBurstScript = {
    "{\"id\":\"lead\",\"workload\":\"lr-small\",\"at_ms\":0}",
    "{\"id\":\"b\",\"workload\":\"lr-small\",\"deadline_s\":90000,"
    "\"at_ms\":1}",
    "{\"id\":\"c\",\"workload\":\"lr-small\",\"deadline_s\":91000,"
    "\"at_ms\":2}",
    "{\"id\":\"d\",\"workload\":\"lr-small\",\"deadline_s\":92000,"
    "\"at_ms\":3}",
};

} // namespace

TEST(Batching, QueuedSameProfileQueriesRideOneSweep)
{
    ServiceConfig config = testConfig();
    config.workers = 1;
    PlanningService svc(config);
    svc.runScript(kBurstScript);

    for (const char *id : {"lead", "b", "c", "d"}) {
        const Response &r = findResponse(svc, id);
        EXPECT_EQ(r.status, "ok") << id;
        EXPECT_TRUE(r.haveConfig) << id;
        EXPECT_EQ(r.cellsDone, r.cellsTotal) << id;
    }
    // b, c, d drained together as one width-3 batch; the batch
    // answers at one completion instant.
    const service::ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.batchedQueries, 3u);
    EXPECT_DOUBLE_EQ(findResponse(svc, "b").tMs,
                     findResponse(svc, "c").tMs);
    EXPECT_DOUBLE_EQ(findResponse(svc, "c").tMs,
                     findResponse(svc, "d").tMs);
    // The shared sweep reuses the leader's 72 evaluated cells via the
    // optimizer memo instead of re-modeling them for every member.
    EXPECT_GT(stats.cellsMemoHit, 0u);
    // Three members, 72 cells each would be 216 solo sweep charges but
    // only 72 cells of worker occupancy; the batch completion must
    // land well before three sequential sweeps would.
    const std::string json = svc.statsJson();
    EXPECT_NE(json.find("\"batches\":1"), std::string::npos);
    EXPECT_NE(json.find("\"batched_queries\":3"), std::string::npos);
}

TEST(Batching, BatchMaxOneDisablesCoalescing)
{
    ServiceConfig config = testConfig();
    config.workers = 1;
    config.batchMax = 1;
    PlanningService svc(config);
    svc.runScript(kBurstScript);
    const service::ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.batches, 0u);
    EXPECT_EQ(stats.batchedQueries, 0u);
    for (const char *id : {"lead", "b", "c", "d"})
        EXPECT_EQ(findResponse(svc, id).status, "ok") << id;
    // Sequential sweeps answer at three distinct instants.
    EXPECT_LT(findResponse(svc, "b").tMs, findResponse(svc, "c").tMs);
    EXPECT_LT(findResponse(svc, "c").tMs, findResponse(svc, "d").tMs);
}

TEST(Batching, BatchedAnswersMatchSequentialAnswers)
{
    // Coalescing is a latency optimization, not a different planner:
    // each member's chosen configuration, cost and runtime must equal
    // what the unbatched service computes for the same query.
    ServiceConfig batched = testConfig();
    batched.workers = 1;
    ServiceConfig solo = batched;
    solo.batchMax = 1;
    PlanningService a(batched);
    PlanningService b(solo);
    a.runScript(kBurstScript);
    b.runScript(kBurstScript);
    for (const char *id : {"lead", "b", "c", "d"}) {
        const Response &x = findResponse(a, id);
        const Response &y = findResponse(b, id);
        EXPECT_EQ(x.config, y.config) << id;
        EXPECT_EQ(x.costUsd, y.costUsd) << id;
        EXPECT_EQ(x.runtimeSec, y.runtimeSec) << id;
        EXPECT_EQ(x.cellsDone, y.cellsDone) << id;
    }
}

TEST(Batching, ReplayIsByteIdentical)
{
    ServiceConfig config = testConfig();
    config.workers = 1;
    PlanningService first(config);
    PlanningService second(config);
    EXPECT_EQ(first.runScript(kBurstScript),
              second.runScript(kBurstScript));
}

TEST(Batching, MemberBudgetsAreEnforcedIndividually)
{
    ServiceConfig config = testConfig();
    config.workers = 1;
    PlanningService svc(config);
    svc.runScript({
        // Cold leader holds the worker ~11.8k virtual ms.
        "{\"id\":\"lead\",\"workload\":\"lr-small\",\"at_ms\":0}",
        // Queued pair shares the batch; "poor" has only ~200 ms of
        // budget left at dispatch, "rich" is unconstrained.
        "{\"id\":\"poor\",\"workload\":\"lr-small\",\"deadline_s\":"
        "90000,\"timeout_ms\":12000,\"at_ms\":1}",
        "{\"id\":\"rich\",\"workload\":\"lr-small\",\"deadline_s\":"
        "91000,\"at_ms\":2}",
    });
    EXPECT_EQ(svc.stats().batches, 1u);
    const Response &poor = findResponse(svc, "poor");
    const Response &rich = findResponse(svc, "rich");
    // The rich member got the full grid and validation.
    EXPECT_EQ(rich.status, "ok");
    EXPECT_FALSE(rich.degraded);
    EXPECT_FALSE(rich.modelOnly);
    EXPECT_EQ(rich.cellsDone, rich.cellsTotal);
    // The poor member was charged only its own remaining budget: a
    // partial prefix, no validation, flagged degraded — riding the
    // batch never let it spend the rich member's budget.
    EXPECT_EQ(poor.status, "ok");
    EXPECT_TRUE(poor.degraded);
    EXPECT_TRUE(poor.modelOnly);
    EXPECT_GT(poor.cellsDone, 0);
    EXPECT_LT(poor.cellsDone, poor.cellsTotal);
    EXPECT_LT(poor.cellsDone, rich.cellsDone);
}

// ----------------------------------------------------------- model store

TEST(ModelStoreService, RestartSkipsProfilingAndAnswersIdentically)
{
    const std::string path =
        testing::TempDir() + "service_model_store.txt";
    std::remove(path.c_str());
    const service::Script script = {
        "{\"id\":\"q\",\"workload\":\"lr-small\",\"at_ms\":0}",
    };

    ServiceConfig config = testConfig();
    config.planner.modelStorePath = path;
    PlanningService first(config);
    first.runScript(script);
    EXPECT_EQ(first.stats().modelStoreHits, 0u);
    const Response &cold = findResponse(first, "q");
    ASSERT_EQ(cold.status, "ok");

    // A "restarted" service: fresh instance, same store file. The
    // four-sample profiling phase is skipped, and the stored constants
    // reproduce the cold answer bit for bit.
    PlanningService second(config);
    second.runScript(script);
    EXPECT_EQ(second.stats().modelStoreHits, 1u);
    const Response &warm = findResponse(second, "q");
    EXPECT_EQ(warm.status, "ok");
    EXPECT_EQ(warm.config, cold.config);
    EXPECT_EQ(warm.costUsd, cold.costUsd);
    EXPECT_EQ(warm.runtimeSec, cold.runtimeSec);
    EXPECT_EQ(warm.cellsDone, cold.cellsDone);
    // Skipped profiling = less budget spent = a faster answer.
    EXPECT_LT(warm.latencyMs, cold.latencyMs);
    EXPECT_EQ(second.stats().slowPathRuns, 1u); // validation only
    std::remove(path.c_str());
}

TEST(ModelStoreService, MangledStoreFailsLoudlyAtStartup)
{
    const std::string path =
        testing::TempDir() + "service_model_store_bad.txt";
    {
        std::ofstream out(path);
        out << "doppio-model-store v1\nmodel oops\n";
    }
    ServiceConfig config = testConfig();
    config.planner.modelStorePath = path;
    EXPECT_THROW(PlanningService svc(config), doppio::FatalError);
    std::remove(path.c_str());
}
