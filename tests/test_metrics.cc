/**
 * @file
 * Unit tests for the metrics containers (stage/job/app aggregation
 * helpers the profiler and benches rely on).
 */

#include <gtest/gtest.h>

#include "spark/metrics.h"

namespace doppio::spark {
namespace {

StageMetrics
makeStage(const std::string &name, double seconds, Bytes shuffleRead,
          Bytes hdfsWrite)
{
    StageMetrics stage;
    stage.name = name;
    stage.numTasks = 10;
    stage.startTick = secondsToTicks(100.0);
    stage.endTick = secondsToTicks(100.0 + seconds);
    if (shuffleRead > 0) {
        StageIoStats &io = stage.forOp(storage::IoOp::ShuffleRead);
        io.bytes = shuffleRead;
        io.requests = 4;
        io.requestSize.addMany(
            static_cast<double>(shuffleRead / 4), 4);
    }
    if (hdfsWrite > 0) {
        StageIoStats &io = stage.forOp(storage::IoOp::HdfsWrite);
        io.bytes = hdfsWrite;
        io.requests = 2;
    }
    return stage;
}

TEST(Metrics, StageSecondsFromTicks)
{
    const StageMetrics stage = makeStage("s", 12.5, 0, 0);
    EXPECT_DOUBLE_EQ(stage.seconds(), 12.5);
}

TEST(Metrics, StageTotalBytesByDirection)
{
    const StageMetrics stage = makeStage("s", 1.0, mib(64), mib(16));
    EXPECT_EQ(stage.totalBytes(storage::IoKind::Read), mib(64));
    EXPECT_EQ(stage.totalBytes(storage::IoKind::Write), mib(16));
}

TEST(Metrics, StageIoAvgRequestSize)
{
    const StageMetrics stage = makeStage("s", 1.0, mib(64), 0);
    EXPECT_NEAR(stage.forOp(storage::IoOp::ShuffleRead)
                    .avgRequestSize(),
                static_cast<double>(mib(16)), 1.0);
    // An idle op reports zero.
    EXPECT_DOUBLE_EQ(
        stage.forOp(storage::IoOp::PersistRead).avgRequestSize(), 0.0);
}

TEST(Metrics, JobSumsStages)
{
    JobMetrics job;
    job.name = "job";
    job.stages.push_back(makeStage("a", 5.0, 0, 0));
    job.stages.push_back(makeStage("b", 7.0, 0, 0));
    EXPECT_DOUBLE_EQ(job.seconds(), 12.0);
}

TEST(Metrics, AppAggregation)
{
    AppMetrics app;
    app.name = "app";
    JobMetrics first;
    first.name = "first";
    first.stages.push_back(makeStage("iteration", 5.0, mib(8), 0));
    JobMetrics second;
    second.name = "second";
    second.stages.push_back(makeStage("iteration", 6.0, mib(8), 0));
    second.stages.push_back(makeStage("save", 2.0, 0, mib(32)));
    app.jobs.push_back(first);
    app.jobs.push_back(second);

    EXPECT_DOUBLE_EQ(app.seconds(), 13.0);
    EXPECT_EQ(app.allStages().size(), 3u);
    EXPECT_DOUBLE_EQ(app.secondsForPrefix("iteration"), 11.0);
    EXPECT_DOUBLE_EQ(app.secondsForPrefix("save"), 2.0);
    EXPECT_EQ(app.bytesForPrefix("iteration",
                                 storage::IoOp::ShuffleRead),
              mib(16));
    EXPECT_EQ(app.bytesForPrefix("save", storage::IoOp::HdfsWrite),
              mib(32));
}

TEST(Metrics, PrefixMatchingIsAnchoredAtStart)
{
    AppMetrics app;
    JobMetrics job;
    job.stages.push_back(makeStage("preiteration", 3.0, 0, 0));
    job.stages.push_back(makeStage("iteration", 4.0, 0, 0));
    app.jobs.push_back(job);
    EXPECT_DOUBLE_EQ(app.secondsForPrefix("iteration"), 4.0);
}

TEST(Metrics, EmptyAppIsZero)
{
    AppMetrics app;
    EXPECT_DOUBLE_EQ(app.seconds(), 0.0);
    EXPECT_TRUE(app.allStages().empty());
    EXPECT_DOUBLE_EQ(app.secondsForPrefix("x"), 0.0);
}

} // namespace
} // namespace doppio::spark
