/**
 * @file
 * Tests for the four-sample-run profiler on synthetic workloads with
 * known ground-truth constants.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "model/profiler.h"
#include "workloads/workload.h"

namespace doppio::model {
namespace {

/** A compute-dominated two-stage app with known task time. */
class SyntheticCompute : public workloads::Workload
{
  public:
    std::string name() const override { return "SyntheticCompute"; }

  protected:
    void
    registerInputs(dfs::Hdfs &hdfs) const override
    {
        hdfs.addFile("input", 12 * 128 * kMiB);
    }

    void
    execute(spark::SparkContext &context) const override
    {
        spark::RddRef input = context.hadoopFile("input");
        // Pipelined parse keeps per-core HDFS demand low so the
        // P=1/P=2 sample runs are contention-free, as the methodology
        // requires (paper sanity check in §VI-1).
        input->pipelinedCpuPerByte = 7.8e-9; // ~1.05 s per 128 MiB
        spark::RddRef result =
            spark::Rdd::narrow("result", {input}, mib(1));
        result->cpuPerTask = 2.0;
        context.runJob("compute", result, spark::ActionSpec::count());
    }
};

/** A shuffle-heavy app whose reduce side is HDD-bound at high P. */
class SyntheticShuffle : public workloads::Workload
{
  public:
    std::string name() const override { return "SyntheticShuffle"; }

  protected:
    void
    registerInputs(dfs::Hdfs &hdfs) const override
    {
        hdfs.addFile("input", 24 * 128 * kMiB);
    }

    void
    execute(spark::SparkContext &context) const override
    {
        spark::RddRef input = context.hadoopFile("input");
        input->pipelinedCpuPerByte = 7.8e-9;
        spark::ShuffleSpec spec;
        spec.bytes = gib(24);
        // Enough map-side CPU that a single core does not saturate the
        // SSD during the P=1/2 sample runs.
        spec.mapCpuPerByte = 1.0e-8;
        spark::RddRef grouped = spark::Rdd::shuffled(
            "grouped", input, 480, gib(24), spec);
        grouped->pipelinedCpuPerByte = 1.0e-8;
        grouped->cpuPerInputByte = 2.0e-8;
        context.runJob("reduce", grouped, spark::ActionSpec::count());
    }
};

cluster::ClusterConfig
baseCluster()
{
    cluster::ClusterConfig config =
        cluster::ClusterConfig::motivationCluster();
    config.taskJitterSigma = 0.0;
    return config;
}

TEST(Profiler, RecoversTaskTimeFromTwoSsdRuns)
{
    const SyntheticCompute workload;
    Profiler profiler(workload.runner(), baseCluster(),
                      spark::SparkConf{});
    const AppModel app = profiler.fit("synthetic");
    ASSERT_EQ(app.stages.size(), 1u);
    const StageModel &stage = app.stages[0];
    EXPECT_EQ(stage.tasks, 12);
    // Per-task time = 2.0 s compute + ~1.3 s pipelined 128 MiB SSD
    // read/parse + dispatch. Tasks in a batch start synchronized, so
    // their read bursts collide at P=2 and a small part of the read
    // time lands in delta_scale instead of t_avg.
    EXPECT_NEAR(stage.tAvg, 3.2, 0.45);
    EXPECT_LT(stage.deltaScale, 1.5);
}

TEST(Profiler, CapturesIoComponents)
{
    const SyntheticShuffle workload;
    Profiler profiler(workload.runner(), baseCluster(),
                      spark::SparkConf{});
    const AppModel app = profiler.fit("shuffle");
    ASSERT_EQ(app.stages.size(), 2u);

    const StageModel &map = app.stage("grouped.map");
    const IoComponent *write = map.findOp(storage::IoOp::ShuffleWrite);
    ASSERT_NE(write, nullptr);
    // Per-task division rounds away at most one byte per task.
    EXPECT_NEAR(static_cast<double>(write->bytes),
                static_cast<double>(gib(24)), 1000.0);
    EXPECT_DOUBLE_EQ(write->physicalFactor, 1.0);

    const StageModel &reduce = app.stage("reduce");
    const IoComponent *read = reduce.findOp(storage::IoOp::ShuffleRead);
    ASSERT_NE(read, nullptr);
    EXPECT_NEAR(static_cast<double>(read->bytes),
                static_cast<double>(gib(24)), 1000.0);
    // rs = perReducer / mappers = 24 GiB / 480 / 24 ~ 2 MiB.
    EXPECT_NEAR(read->requestSize, static_cast<double>(gib(24)) / 480 /
                                       24,
                1e5);
    EXPECT_GT(read->soloPhaseSecondsPerTask, 0.0);
}

TEST(Profiler, HdfsWriteCarriesReplicationFactor)
{
    class SaveApp : public workloads::Workload
    {
      public:
        std::string name() const override { return "SaveApp"; }

      protected:
        void
        registerInputs(dfs::Hdfs &hdfs) const override
        {
            hdfs.addFile("input", 8 * 128 * kMiB);
        }

        void
        execute(spark::SparkContext &context) const override
        {
            spark::RddRef input = context.hadoopFile("input");
            spark::RddRef out =
                spark::Rdd::narrow("out", {input}, gib(1));
            context.runJob("save", out,
                           spark::ActionSpec::saveAsHadoopFile(gib(1)));
        }
    };
    const SaveApp workload;
    Profiler profiler(workload.runner(), baseCluster(),
                      spark::SparkConf{});
    const AppModel app = profiler.fit("save");
    const IoComponent *write =
        app.stage("save").findOp(storage::IoOp::HdfsWrite);
    ASSERT_NE(write, nullptr);
    EXPECT_DOUBLE_EQ(write->physicalFactor, 2.0);
}

TEST(Profiler, PredictsUnseenConfigurationWithinTolerance)
{
    // The headline claim, in miniature: fit on sample runs, predict an
    // unseen (P, disks) point, compare against simulation.
    const SyntheticShuffle workload;
    cluster::ClusterConfig config = baseCluster();
    Profiler profiler(workload.runner(), config, spark::SparkConf{});
    const AppModel app = profiler.fit("shuffle");

    // Unseen configuration: P = 8, HDD local.
    config.applyHybrid(cluster::HybridConfig::config3());
    spark::SparkConf conf;
    conf.executorCores = 8;
    const double measured = workload.run(config, conf).seconds();
    const PlatformProfile platform = PlatformProfile::fromDisks(
        storage::makeSsdParams(), storage::makeHddParams());
    const double predicted = app.predictSeconds(3, 8, platform);
    EXPECT_LT(relativeError(predicted, measured), 0.15)
        << "predicted " << predicted << " measured " << measured;
}

TEST(Profiler, GcExtensionRecoversSensitivity)
{
    class GcApp : public workloads::Workload
    {
      public:
        std::string name() const override { return "GcApp"; }

      protected:
        void
        registerInputs(dfs::Hdfs &hdfs) const override
        {
            hdfs.addFile("input", 24 * 128 * kMiB);
        }

        void
        execute(spark::SparkContext &context) const override
        {
            spark::RddRef input = context.hadoopFile("input");
            input->pipelinedCpuPerByte = 7.8e-9;
            spark::RddRef result =
                spark::Rdd::narrow("result", {input}, mib(1));
            result->cpuPerTask = 2.0;
            result->gcSensitivity = 0.3;
            context.runJob("compute", result,
                           spark::ActionSpec::count());
        }
    };
    const GcApp workload;
    Profiler::Options options;
    options.fitGc = true;
    Profiler profiler(workload.runner(), baseCluster(),
                      spark::SparkConf{}, options);
    const AppModel app = profiler.fit("gc");
    // The engine scales only compute by the GC factor while the fit
    // attributes whole-task time; accept a band around 0.3.
    EXPECT_GT(app.stages[0].gcSensitivity, 0.15);
    EXPECT_LT(app.stages[0].gcSensitivity, 0.45);
}

TEST(Profiler, WithoutGcRunSensitivityStaysZero)
{
    const SyntheticCompute workload;
    Profiler profiler(workload.runner(), baseCluster(),
                      spark::SparkConf{});
    const AppModel app = profiler.fit("synthetic");
    EXPECT_DOUBLE_EQ(app.stages[0].gcSensitivity, 0.0);
}

TEST(Profiler, NullRunnerFatal)
{
    EXPECT_THROW(Profiler(nullptr, baseCluster(), spark::SparkConf{}),
                 FatalError);
}

} // namespace
} // namespace doppio::model
