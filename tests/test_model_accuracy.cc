/**
 * @file
 * Integration test of the headline claim: the model fitted from the
 * four sample runs predicts unseen (N, P, disk) configurations of the
 * real workloads with low error (paper: <10% average).
 *
 * Uses reduced dataset scales so the suite stays fast; scale factors
 * do not change the contention regimes being validated.
 */

#include <gtest/gtest.h>

#include "common/stats.h"
#include "model/profiler.h"
#include "workloads/gatk4.h"
#include "workloads/svm.h"
#include "workloads/terasort.h"

namespace doppio::model {
namespace {

struct Point
{
    cluster::HybridConfig hybrid;
    int cores;
};

/**
 * Fit a model from the sample runs, then compare predictions against
 * full simulations at the evaluation cluster for each test point.
 * @param extended use the fifth (different-N) sample run, which fits
 *        the per-node GC/contention term; the paper-base four-run fit
 *        leaves that term confounded with delta_scale.
 * @return mean relative error.
 */
double
meanError(const workloads::Workload &workload,
          const std::vector<Point> &points, bool extended = true)
{
    cluster::ClusterConfig base =
        cluster::ClusterConfig::evaluationCluster();
    Profiler::Options options;
    options.fitGc = extended;
    Profiler profiler(workload.runner(), base, spark::SparkConf{},
                      options);
    const AppModel app = profiler.fit(workload.name());

    SummaryStats error;
    for (const Point &point : points) {
        cluster::ClusterConfig config = base;
        config.applyHybrid(point.hybrid);
        spark::SparkConf conf;
        conf.executorCores = point.cores;
        const double measured =
            workload.run(config, conf).seconds();
        const PlatformProfile platform = PlatformProfile::fromDisks(
            config.node.hdfsDisk, config.node.localDisk);
        const double predicted = app.predictSeconds(
            config.numSlaves, point.cores, platform);
        EXPECT_GT(predicted, 0.0);
        error.add(relativeError(predicted, measured));
    }
    return error.mean();
}

TEST(ModelAccuracy, Gatk4UnderTenPercentAverage)
{
    const workloads::Gatk4 gatk4(
        workloads::Gatk4::Options::scaled(100.0)); // 1/5 scale
    const std::vector<Point> points = {
        {cluster::HybridConfig::config1(), 12},
        {cluster::HybridConfig::config1(), 24},
        {cluster::HybridConfig::config3(), 12},
        {cluster::HybridConfig::config3(), 24},
    };
    const double error = meanError(gatk4, points);
    EXPECT_LT(error, 0.10) << "mean relative error " << error;
}

TEST(ModelAccuracy, ExtendedFitBeatsBaseFitOnGatk4)
{
    // Ablation: the paper-base four-run fit confounds per-node GC and
    // I/O-burst contention with delta_scale, which does not transfer
    // across node counts; the different-N fifth run separates them.
    const workloads::Gatk4 gatk4(
        workloads::Gatk4::Options::scaled(100.0));
    const std::vector<Point> points = {
        {cluster::HybridConfig::config1(), 12},
        {cluster::HybridConfig::config1(), 24},
        {cluster::HybridConfig::config3(), 12},
        {cluster::HybridConfig::config3(), 24},
    };
    const double base_error = meanError(gatk4, points, false);
    const double extended_error = meanError(gatk4, points, true);
    EXPECT_LT(extended_error, base_error);
}

TEST(ModelAccuracy, SvmUnderTenPercentAverage)
{
    workloads::Svm::Options options;
    options.partitions = 600;
    options.cachedBytes = gib(41);
    options.shuffleBytes = gib(85);
    options.iterations = 5;
    const workloads::Svm svm(options);
    const std::vector<Point> points = {
        {cluster::HybridConfig::config1(), 12},
        {cluster::HybridConfig::config3(), 24},
    };
    const double error = meanError(svm, points);
    EXPECT_LT(error, 0.10) << "mean relative error " << error;
}

TEST(ModelAccuracy, TerasortUnderTenPercentAverage)
{
    workloads::Terasort::Options options;
    options.dataBytes = gib(186); // 1/5 scale
    options.reducers = 186;
    const workloads::Terasort terasort(options);
    const std::vector<Point> points = {
        {cluster::HybridConfig::config1(), 12},
        {cluster::HybridConfig::config1(), 24},
        {cluster::HybridConfig::config3(), 12},
        {cluster::HybridConfig::config3(), 24},
    };
    const double error = meanError(terasort, points);
    EXPECT_LT(error, 0.10) << "mean relative error " << error;
}

TEST(ModelAccuracy, PredictionsTrackDiskSensitivity)
{
    // The model must reproduce who wins and by roughly what factor,
    // not just absolute times: BR-like stages predicted much slower
    // on HDD local than SSD local.
    const workloads::Gatk4 gatk4(
        workloads::Gatk4::Options::scaled(100.0));
    cluster::ClusterConfig base =
        cluster::ClusterConfig::evaluationCluster();
    Profiler::Options options;
    options.fitGc = true;
    Profiler profiler(gatk4.runner(), base, spark::SparkConf{},
                      options);
    const AppModel app = profiler.fit("GATK4");

    const PlatformProfile ssd = PlatformProfile::fromDisks(
        storage::makeSsdParams(), storage::makeSsdParams());
    const PlatformProfile hdd_local = PlatformProfile::fromDisks(
        storage::makeSsdParams(), storage::makeHddParams());
    const double t_ssd = app.predictSeconds(10, 36, ssd);
    const double t_hdd = app.predictSeconds(10, 36, hdd_local);
    EXPECT_GT(t_hdd / t_ssd, 3.0);
}

} // namespace
} // namespace doppio::model
