/**
 * @file
 * End-to-end tests for SparkContext job execution.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "dfs/hdfs.h"
#include "sim/simulator.h"
#include "spark/spark_context.h"

namespace doppio::spark {
namespace {

class SparkContextTest : public ::testing::Test
{
  protected:
    SparkContextTest()
    {
        config_ = cluster::ClusterConfig::motivationCluster();
        config_.taskJitterSigma = 0.0;
        cluster_ = std::make_unique<cluster::Cluster>(sim_, config_);
        hdfs_ = std::make_unique<dfs::Hdfs>(*cluster_);
        hdfs_->addFile("input", gib(1));
        context_ = std::make_unique<SparkContext>(*cluster_, *hdfs_,
                                                  SparkConf{});
    }

    sim::Simulator sim_;
    cluster::ClusterConfig config_;
    std::unique_ptr<cluster::Cluster> cluster_;
    std::unique_ptr<dfs::Hdfs> hdfs_;
    std::unique_ptr<SparkContext> context_;
};

TEST_F(SparkContextTest, RunJobRecordsMetrics)
{
    RddRef input = context_->hadoopFile("input");
    const JobMetrics &job =
        context_->runJob("count", input, ActionSpec::count());
    EXPECT_EQ(job.name, "count");
    ASSERT_EQ(job.stages.size(), 1u);
    EXPECT_EQ(job.stages[0].numTasks, 8);
    EXPECT_GT(job.seconds(), 0.0);
    EXPECT_EQ(context_->metrics().jobs.size(), 1u);
}

TEST_F(SparkContextTest, StagesAdvanceSimulatedTime)
{
    RddRef input = context_->hadoopFile("input");
    context_->runJob("a", input, ActionSpec::count());
    const Tick after_first = sim_.now();
    context_->runJob("b", input, ActionSpec::count());
    EXPECT_GT(sim_.now(), after_first);
}

TEST_F(SparkContextTest, ShuffleFilesSurviveAcrossJobs)
{
    RddRef input = context_->hadoopFile("input");
    ShuffleSpec spec;
    spec.bytes = gib(2);
    RddRef grouped = Rdd::shuffled("grouped", input, 16, gib(2), spec);
    const JobMetrics &job1 =
        context_->runJob("first", grouped, ActionSpec::count());
    EXPECT_EQ(job1.stages.size(), 2u);
    const JobMetrics &job2 =
        context_->runJob("second", grouped, ActionSpec::count());
    // Map stage skipped: one stage, no shuffle write.
    ASSERT_EQ(job2.stages.size(), 1u);
    EXPECT_EQ(job2.stages[0].forOp(storage::IoOp::ShuffleWrite).bytes,
              0ULL);
    EXPECT_EQ(job2.stages[0].forOp(storage::IoOp::ShuffleRead).bytes,
              gib(2));
}

TEST_F(SparkContextTest, CachedRddSkipsHdfsOnSecondJob)
{
    RddRef input = context_->hadoopFile("input");
    RddRef parsed = Rdd::narrow("parsed", {input}, gib(1));
    parsed->memoryBytes = gib(1);
    parsed->persist(StorageLevel::MemoryAndDisk);
    context_->runJob("validate", parsed, ActionSpec::count());
    const JobMetrics &job =
        context_->runJob("iterate", parsed, ActionSpec::count());
    EXPECT_EQ(job.stages[0].forOp(storage::IoOp::HdfsRead).bytes, 0ULL);
}

TEST_F(SparkContextTest, UnpersistForcesRecompute)
{
    RddRef input = context_->hadoopFile("input");
    RddRef parsed = Rdd::narrow("parsed", {input}, gib(1));
    parsed->memoryBytes = gib(1);
    parsed->persist(StorageLevel::MemoryAndDisk);
    context_->runJob("validate", parsed, ActionSpec::count());
    context_->unpersist(parsed);
    const JobMetrics &job =
        context_->runJob("again", parsed, ActionSpec::count());
    EXPECT_EQ(job.stages[0].forOp(storage::IoOp::HdfsRead).bytes,
              gib(1));
}

TEST_F(SparkContextTest, SaveActionWritesToHdfs)
{
    RddRef input = context_->hadoopFile("input");
    RddRef out = Rdd::narrow("out", {input}, gib(1));
    context_->runJob("save", out, ActionSpec::saveAsHadoopFile(gib(1)));
    // Replicated twice at the devices.
    EXPECT_EQ(hdfs_->physicalBytesWritten(), 2 * gib(1));
}

TEST_F(SparkContextTest, AppMetricsPrefixHelpers)
{
    RddRef input = context_->hadoopFile("input");
    RddRef iter1 = Rdd::narrow("iteration", {input}, mib(1));
    RddRef iter2 = Rdd::narrow("iteration", {input}, mib(1));
    context_->runJob("iteration", iter1, ActionSpec::count());
    context_->runJob("iteration", iter2, ActionSpec::count());
    const AppMetrics &m = context_->metrics();
    EXPECT_EQ(m.allStages().size(), 2u);
    EXPECT_GT(m.secondsForPrefix("iteration"), 0.0);
    EXPECT_EQ(m.bytesForPrefix("iteration", storage::IoOp::HdfsRead),
              2 * gib(1));
    EXPECT_EQ(m.secondsForPrefix("nonexistent"), 0.0);
}

TEST_F(SparkContextTest, UnknownFileFatal)
{
    EXPECT_THROW(context_->hadoopFile("missing"), FatalError);
}

TEST_F(SparkContextTest, InvalidConfFatal)
{
    SparkConf bad;
    bad.executorCores = 0;
    EXPECT_THROW(SparkContext(*cluster_, *hdfs_, bad), FatalError);
}

} // namespace
} // namespace doppio::spark
