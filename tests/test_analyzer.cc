/**
 * @file
 * Unit tests for the bottleneck analyzer (b, lambda, B).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "model/analyzer.h"

namespace doppio::model {
namespace {

PlatformProfile
flatProfile(double localRead)
{
    PlatformProfile p;
    p.hdfsRead = LookupTable({{1.0, 1e9}, {1e9, 1e9}});
    p.hdfsWrite = p.hdfsRead;
    p.localRead = LookupTable({{1.0, localRead}, {1e9, localRead}});
    p.localWrite = p.hdfsRead;
    return p;
}

/** The paper's BR-stage example (§V-A2): T=60 MB/s, BW=480, lambda=20. */
StageModel
brLikeStage()
{
    StageModel s;
    s.name = "BR";
    s.tasks = 12000;
    s.tAvg = 9.0;
    IoComponent read;
    read.op = storage::IoOp::ShuffleRead;
    read.bytes = static_cast<Bytes>(12000) * 27 * 1000 * 1000;
    read.requestSize = 30000.0;
    read.soloPhaseSecondsPerTask = 0.45; // 27 MB at 60 MB/s
    s.io.push_back(read);
    return s;
}

TEST(Analyzer, PaperBrExampleQuantities)
{
    const StageAnalysis a =
        analyzeStage(brLikeStage(), flatProfile(480e6));
    ASSERT_EQ(a.ops.size(), 1u);
    const OpAnalysis &op = a.ops[0];
    EXPECT_NEAR(op.perCoreThroughput, 60e6, 1e5);  // T = 60 MB/s
    EXPECT_NEAR(op.breakPoint, 8.0, 0.1);          // b = 480/60
    EXPECT_NEAR(op.lambda, 20.0, 0.1);             // 9 / 0.45
    EXPECT_NEAR(op.turningPoint, 160.0, 2.0);      // B = lambda*b
    EXPECT_NEAR(a.minTurningPoint, 160.0, 2.0);
}

TEST(Analyzer, HddShrinksTurningPoint)
{
    // Paper: on HDD (15 MB/s) the per-core I/O takes 4x longer;
    // re-fitting on HDD gives lambda ~ 5 and B ~ 5.
    StageModel s = brLikeStage();
    s.io[0].soloPhaseSecondsPerTask = 1.8; // 27 MB at 15 MB/s
    const StageAnalysis a = analyzeStage(s, flatProfile(15e6));
    const OpAnalysis &op = a.ops[0];
    EXPECT_NEAR(op.breakPoint, 1.0, 0.1);
    EXPECT_NEAR(op.lambda, 5.0, 0.1);
    EXPECT_NEAR(op.turningPoint, 5.0, 0.5);
}

TEST(Analyzer, StageWithoutIoHasInfiniteTurningPoint)
{
    StageModel s;
    s.name = "compute";
    s.tasks = 100;
    s.tAvg = 1.0;
    const StageAnalysis a = analyzeStage(s, flatProfile(1.0));
    EXPECT_TRUE(a.ops.empty());
    EXPECT_TRUE(std::isinf(a.minTurningPoint));
}

TEST(Analyzer, SkipsComponentsWithoutSoloTimes)
{
    StageModel s = brLikeStage();
    s.io[0].soloPhaseSecondsPerTask = 0.0;
    const StageAnalysis a = analyzeStage(s, flatProfile(480e6));
    EXPECT_TRUE(a.ops.empty());
}

TEST(Analyzer, SweepStageCoresPlateausAtLimit)
{
    const PlatformProfile p = flatProfile(480e6);
    const StageModel s = brLikeStage();
    const auto sweep =
        sweepStageCores(s, 10, {1, 2, 4, 8, 16, 32, 64, 128, 256}, p);
    ASSERT_EQ(sweep.size(), 9u);
    // Monotone non-increasing.
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_LE(sweep[i].second, sweep[i - 1].second + 1e-9);
    // Beyond B=160 per node the read limit pins the time.
    const double limit = 12000.0 * 27e6 / (10 * 480e6);
    EXPECT_NEAR(sweep.back().second, limit, 1e-6);
}

TEST(Analyzer, SweepAppCoresSums)
{
    const PlatformProfile p = flatProfile(480e6);
    AppModel app;
    app.stages.push_back(brLikeStage());
    app.stages.push_back(brLikeStage());
    const auto stage_sweep = sweepStageCores(app.stages[0], 10, {8}, p);
    const auto app_sweep = sweepAppCores(app, 10, {8}, p);
    EXPECT_NEAR(app_sweep[0].second, 2.0 * stage_sweep[0].second,
                1e-9);
}

} // namespace
} // namespace doppio::model
