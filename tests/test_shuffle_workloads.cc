/**
 * @file
 * Workload tests: the shuffle-heavy applications (TriangleCount,
 * Terasort) against the paper's §V-B observations.
 */

#include <gtest/gtest.h>

#include "cluster/cluster_config.h"
#include "workloads/terasort.h"
#include "workloads/triangle_count.h"

namespace doppio::workloads {
namespace {

cluster::ClusterConfig
evalCluster(const cluster::HybridConfig &hybrid)
{
    cluster::ClusterConfig config =
        cluster::ClusterConfig::evaluationCluster();
    config.applyHybrid(hybrid);
    return config;
}

spark::SparkConf
defaultConf()
{
    spark::SparkConf conf;
    conf.executorCores = 36;
    return conf;
}

TEST(TriangleCountTest, StructureMatchesPaper)
{
    TriangleCount tc;
    const spark::AppMetrics m =
        tc.run(evalCluster(cluster::HybridConfig::config1()),
               defaultConf());
    EXPECT_EQ(m.jobs.size(), 2u);
    // 49 GB graph cached in memory: the compute job's map stage reads
    // nothing from HDFS.
    EXPECT_EQ(m.bytesForPrefix("computeTriangleCount",
                               storage::IoOp::HdfsRead),
              0ULL);
    // 396 GB of shuffle through Spark local.
    EXPECT_NEAR(toGiB(m.bytesForPrefix("computeTriangleCount",
                                       storage::IoOp::ShuffleRead)),
                396.0, 2.0);
}

TEST(TriangleCountTest, ComputePhaseGapNear6p5x)
{
    // Paper Fig. 11: 6.5x between HDD and SSD local.
    TriangleCount tc;
    const spark::AppMetrics ssd =
        tc.run(evalCluster(cluster::HybridConfig::config1()),
               defaultConf());
    const spark::AppMetrics hdd =
        tc.run(evalCluster(cluster::HybridConfig::config3()),
               defaultConf());
    const double gap =
        hdd.secondsForPrefix("computeTriangleCount") /
        ssd.secondsForPrefix("computeTriangleCount");
    EXPECT_GT(gap, 5.0);
    EXPECT_LT(gap, 8.5);
}

TEST(TriangleCountTest, ShuffleReadChunksAreSmall)
{
    TriangleCount tc;
    const spark::AppMetrics m =
        tc.run(evalCluster(cluster::HybridConfig::config1()),
               defaultConf());
    for (const spark::StageMetrics *stage : m.allStages()) {
        const auto &read = stage->forOp(storage::IoOp::ShuffleRead);
        if (read.bytes == 0)
            continue;
        // 396 GB / 2400 reducers / 2400 mappers ~ 69 KiB.
        EXPECT_NEAR(read.avgRequestSize(), 69.0 * 1024.0, 8000.0);
    }
}

TEST(TerasortTest, StructureMatchesPaper)
{
    Terasort ts;
    const spark::AppMetrics m =
        ts.run(evalCluster(cluster::HybridConfig::config1()),
               defaultConf());
    ASSERT_EQ(m.jobs.size(), 1u);
    ASSERT_EQ(m.jobs[0].stages.size(), 2u);
    EXPECT_EQ(m.jobs[0].stages[0].name, "NF");
    EXPECT_EQ(m.jobs[0].stages[1].name, "SF");
    // 930 GB in, 930 GB shuffled each way, 930 GB out.
    using storage::IoOp;
    EXPECT_NEAR(toGiB(m.bytesForPrefix("NF", IoOp::HdfsRead)), 930.0,
                2.0);
    EXPECT_NEAR(toGiB(m.bytesForPrefix("NF", IoOp::ShuffleWrite)),
                930.0, 2.0);
    EXPECT_NEAR(toGiB(m.bytesForPrefix("SF", IoOp::ShuffleRead)),
                930.0, 2.0);
    EXPECT_NEAR(toGiB(m.bytesForPrefix("SF", IoOp::HdfsWrite)), 930.0,
                2.0);
}

TEST(TerasortTest, LocalDiskGapNear2p6x)
{
    // Paper Fig. 12: 2.6x between HDD and SSD local — moderated by
    // the HDFS traffic that does not change.
    Terasort ts;
    const spark::AppMetrics ssd =
        ts.run(evalCluster(cluster::HybridConfig::config1()),
               defaultConf());
    const spark::AppMetrics hdd =
        ts.run(evalCluster(cluster::HybridConfig::config3()),
               defaultConf());
    const double gap = hdd.seconds() / ssd.seconds();
    EXPECT_GT(gap, 2.0);
    EXPECT_LT(gap, 3.5);
}

TEST(TerasortTest, ReducersReadRangesAtModerateChunks)
{
    Terasort ts;
    const spark::AppMetrics m =
        ts.run(evalCluster(cluster::HybridConfig::config1()),
               defaultConf());
    const spark::StageMetrics *sf = m.allStages()[1];
    // 1 GiB per range / 7440 mappers ~ 134 KiB.
    EXPECT_NEAR(sf->forOp(storage::IoOp::ShuffleRead).avgRequestSize(),
                134.0 * 1024.0, 20000.0);
}

/**
 * Property: across all four hybrid configurations, Terasort's
 * end-to-end time orders consistently with disk speed (SSD-local
 * configs never slower than their HDD-local counterparts).
 */
class TerasortHybridSweep
    : public ::testing::TestWithParam<int>
{};

TEST_P(TerasortHybridSweep, CompletesAndAccountsAllBytes)
{
    const cluster::HybridConfig hybrids[] = {
        cluster::HybridConfig::config1(),
        cluster::HybridConfig::config2(),
        cluster::HybridConfig::config3(),
        cluster::HybridConfig::config4()};
    Terasort::Options small;
    small.dataBytes = gib(93);
    small.reducers = 93;
    Terasort ts(small);
    const spark::AppMetrics m = ts.run(
        evalCluster(hybrids[GetParam()]), defaultConf());
    EXPECT_NEAR(toGiB(m.bytesForPrefix("SF",
                                       storage::IoOp::HdfsWrite)),
                93.0, 1.0);
    EXPECT_GT(m.seconds(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, TerasortHybridSweep,
                         ::testing::Values(0, 1, 2, 3));

} // namespace
} // namespace doppio::workloads
